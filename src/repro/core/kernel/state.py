"""Resumable predictor passes — the segment boundary's state carrier.

The batched passes in :mod:`repro.core.kernel.passes` replay a whole
predictor stream in one loop over dense tables.  Segment-parallel
analysis (:mod:`repro.core.shard`) needs the same streams replayed in
*pieces*: a worker that owns records ``[r0, r1)`` must start each
predictor exactly where the previous segment left it.  This module
provides the sparse twins of every pass:

* state lives in plain dicts keyed by table index, with untouched
  cells reading as the dense tables' initial values — the same
  equivalence the short-stream variant of ``_context_pass`` already
  relies on ("untouched cells read as (empty, counter 0) either way"),
  extended to every predictor kind;
* each ``run_*_slice`` call consumes one slice of the stream, appends
  its hit bytes, mutates the state in place, and can record the set of
  table cells it wrote;
* :func:`snapshot_delta` turns a touched-set into a **delta** — the
  written cells' values at the boundary — and :func:`fold_deltas`
  replays deltas ``0..i-1`` (mostly ``dict.update`` at C speed) to
  reconstruct the state a segment ``i`` worker resumes from.

Deltas are what the v2 segment index persists (see docs/sharding.md):
storing only the cells each segment wrote bounds the sidecar at
O(total table writes) instead of O(segments x table size).

The update rules are transcribed line-for-line from passes.py; the
differential suite and the segmented fuzz in
tests/properties/test_kernel_fuzz.py hold the two implementations
byte-identical.
"""

from __future__ import annotations

from repro.predictors.base import parse_predictor_spec

_EMPTY = object()

_MASK32 = 0xFFFF_FFFF
_SIGN32 = 0x8000_0000


# ----------------------------------------------------------------------
# State construction.
#
# A state is a dict of named sub-tables (plain dicts) plus, for
# gshare, the scalar history register.  Keys absent from a sub-table
# read as the dense pass's initial cell value.
# ----------------------------------------------------------------------

#: Sub-tables whose values are mutable lists (stride entries); folding
#: a delta into a live state must copy them so the worker's in-place
#: updates never corrupt the shared delta.
_LIST_TABLES = frozenset({"entries"})

_VALUE_TABLES = {
    "last": ("table", "counters"),
    "stride": ("entries",),
    "context": ("contexts", "table", "counters"),
    "hybrid": ("entries", "contexts", "c_table", "c_counters", "chooser"),
}

_BRANCH_TABLES = {
    "gshare": ("counters",),
    "local": ("histories", "counters"),
}


def new_value_state(kind: str) -> dict:
    """Fresh (stream-start) state for one value-predictor kind."""
    if kind not in _VALUE_TABLES:
        raise ValueError(f"unknown value predictor kind: {kind!r}")
    return {name: {} for name in _VALUE_TABLES[kind]}


def new_branch_state(kind: str) -> dict:
    """Fresh (stream-start) state for one branch-predictor kind."""
    if kind not in _BRANCH_TABLES:
        raise ValueError(f"unknown branch predictor kind: {kind!r}")
    state = {name: {} for name in _BRANCH_TABLES[kind]}
    if kind == "gshare":
        state["history"] = 0
    return state


def new_touched(state: dict) -> dict:
    """A touched-set per sub-table of ``state`` (scalars excluded)."""
    return {name: set() for name, value in state.items()
            if isinstance(value, dict)}


def snapshot_delta(state: dict, touched: dict) -> dict:
    """The written cells' current values: one segment's state delta.

    Values are copied where mutable, so the delta stays valid however
    the live state evolves afterwards.  Scalars (gshare history) ride
    along unconditionally — they change nearly every element.
    """
    delta: dict = {}
    for name, keys in touched.items():
        table = state[name]
        if name in _LIST_TABLES:
            delta[name] = {key: table[key].copy() for key in keys
                           if key in table}
        else:
            delta[name] = {key: table[key] for key in keys
                           if key in table}
    for name, value in state.items():
        if not isinstance(value, dict):
            delta[name] = value
    return delta


def fold_deltas(state: dict, deltas) -> dict:
    """Apply ``deltas`` (oldest first) onto ``state``; returns it.

    Later deltas win per cell, reproducing the state at the boundary
    the last delta ends on.  List-valued cells are copied in so the
    caller may mutate the folded state freely.
    """
    for delta in deltas:
        for name, value in delta.items():
            if not isinstance(value, dict):
                state[name] = value
            elif name in _LIST_TABLES:
                table = state[name]
                for key, entry in value.items():
                    table[key] = entry.copy()
            else:
                state[name].update(value)
    return state


# ----------------------------------------------------------------------
# Value predictors (sparse twins of passes._last_pass etc.).
# ----------------------------------------------------------------------

def _last_slice(state, keys, values, hits, touched,
                index_bits=16, hysteresis=3):
    mask = (1 << index_bits) - 1
    table = state["table"]
    counters = state["counters"]
    table_get = table.get
    counters_get = counters.get
    replace = min(1, hysteresis)
    empty = _EMPTY
    hit = hits.append
    touch = touched["table"].add if touched is not None else None
    for key, value in zip(keys, values):
        index = key & mask
        stored = table_get(index, empty)
        if stored is not empty and stored == value:
            hit(1)
            counter = counters_get(index, 0)
            if counter < hysteresis:
                counters[index] = counter + 1
        else:
            hit(0)
            counter = counters_get(index, 0)
            if counter > 0:
                counters[index] = counter - 1
            else:
                table[index] = value
                counters[index] = replace
        if touch is not None:
            touch(index)
    if touched is not None:
        touched["counters"] |= touched["table"]


def _stride_slice(state, keys, values, hits, touched, index_bits=16):
    mask = (1 << index_bits) - 1
    entries = state["entries"]
    entries_get = entries.get
    hit = hits.append
    touch = touched["entries"].add if touched is not None else None
    int_t = int
    for key, value in zip(keys, values):
        index = key & mask
        entry = entries_get(index)
        if touch is not None:
            touch(index)
        if entry is None:
            entries[index] = [value, 0, 0]
            hit(0)
            continue
        last = entry[0]
        stride = entry[1]
        if (type(value) is int_t and type(last) is int_t
                and type(stride) is int_t):
            prediction = (last + stride) & _MASK32
            new_stride = (value - last) & _MASK32
            if new_stride & _SIGN32:
                new_stride -= 0x1_0000_0000
        else:
            prediction = last + stride
            new_stride = value - last
        hit(1 if prediction == value else 0)
        if new_stride == entry[2]:
            entry[1] = new_stride
        entry[2] = new_stride
        entry[0] = value
    return None


def _context_slice(state, keys, values, hits, touched,
                   l1_bits=16, l2_bits=20, order=4, hysteresis=7):
    hash_bits = max(1, l2_bits // order)
    l1_mask = (1 << l1_bits) - 1
    l2_mask = (1 << l2_bits) - 1
    contexts = state["contexts"]
    contexts_get = contexts.get
    table = state["table"]
    table_get = table.get
    counters = state["counters"]
    counters_get = counters.get
    replace = min(1, hysteresis)
    empty = _EMPTY
    hit = hits.append
    if touched is not None:
        touch_l1 = touched["contexts"].add
        touch_ctx = touched["table"].add
    else:
        touch_l1 = touch_ctx = None
    for key, value in zip(keys, values):
        l1_index = key & l1_mask
        context = contexts_get(l1_index, 0)
        stored = table_get(context, empty)
        if stored is not empty and stored == value:
            hit(1)
            counter = counters_get(context, 0)
            if counter < hysteresis:
                counters[context] = counter + 1
        else:
            hit(0)
            counter = counters_get(context, 0)
            if counter > 0:
                counters[context] = counter - 1
            else:
                table[context] = value
                counters[context] = replace
        raw = hash(value)
        folded = (raw ^ (raw >> 20) ^ (raw >> 40)) & l2_mask
        contexts[l1_index] = ((context << hash_bits) ^ folded) & l2_mask
        if touch_l1 is not None:
            touch_l1(l1_index)
            touch_ctx(context)
    if touched is not None:
        touched["counters"] |= touched["table"]


def _hybrid_slice(state, keys, values, hits, touched,
                  index_bits=16, l2_bits=20, chooser_init=2):
    mask = (1 << index_bits) - 1
    entries = state["entries"]
    entries_get = entries.get
    hash_bits = max(1, l2_bits // 4)
    l2_mask = (1 << l2_bits) - 1
    contexts = state["contexts"]
    contexts_get = contexts.get
    c_table = state["c_table"]
    c_table_get = c_table.get
    c_counters = state["c_counters"]
    c_counters_get = c_counters.get
    chooser_tab = state["chooser"]
    chooser_get = chooser_tab.get
    empty = _EMPTY
    hit = hits.append
    if touched is not None:
        touch_idx = touched["entries"].add
        touch_ctx = touched["c_table"].add
    else:
        touch_idx = touch_ctx = None
    int_t = int
    for key, value in zip(keys, values):
        index = key & mask
        chooser = chooser_get(index, chooser_init)
        # --- peeks (before either component trains) -------------------
        entry = entries_get(index)
        if chooser >= 2:
            context = contexts_get(index, 0)
            stored = c_table_get(context, empty)
            chosen = None if stored is empty else stored
        elif entry is None:
            chosen = None
        else:
            last = entry[0]
            stride = entry[1]
            # peek() checks only last/stride types, unlike see().
            if type(last) is int_t and type(stride) is int_t:
                chosen = (last + stride) & _MASK32
            else:
                chosen = last + stride
        hit(1 if chosen is not None and chosen == value else 0)
        # --- stride component trains ----------------------------------
        if entry is None:
            entries[index] = [value, 0, 0]
            stride_hit = False
        else:
            last = entry[0]
            stride = entry[1]
            if (type(value) is int_t and type(last) is int_t
                    and type(stride) is int_t):
                prediction = (last + stride) & _MASK32
                new_stride = (value - last) & _MASK32
                if new_stride & _SIGN32:
                    new_stride -= 0x1_0000_0000
            else:
                prediction = last + stride
                new_stride = value - last
            stride_hit = prediction == value
            if new_stride == entry[2]:
                entry[1] = new_stride
            entry[2] = new_stride
            entry[0] = value
        # --- context component trains ---------------------------------
        context = contexts_get(index, 0)
        stored = c_table_get(context, empty)
        context_hit = stored is not empty and stored == value
        counter = c_counters_get(context, 0)
        if context_hit:
            if counter < 7:
                c_counters[context] = counter + 1
        elif counter > 0:
            c_counters[context] = counter - 1
        else:
            c_table[context] = value
            c_counters[context] = 1
        raw = hash(value)
        folded = (raw ^ (raw >> 20) ^ (raw >> 40)) & l2_mask
        contexts[index] = ((context << hash_bits) ^ folded) & l2_mask
        # --- chooser trains on disagreement ---------------------------
        if stride_hit != context_hit:
            if context_hit:
                if chooser < 3:
                    chooser_tab[index] = chooser + 1
            elif chooser > 0:
                chooser_tab[index] = chooser - 1
        if touch_idx is not None:
            touch_idx(index)
            touch_ctx(context)
    if touched is not None:
        touched["contexts"] |= touched["entries"]
        touched["chooser"] |= touched["entries"]
        touched["c_counters"] |= touched["c_table"]


_VALUE_SLICES = {
    "last": _last_slice,
    "stride": _stride_slice,
    "context": _context_slice,
    "hybrid": _hybrid_slice,
}


def run_value_slice(spec: str, state: dict, keys, values,
                    hits: bytearray, touched: dict | None = None) -> None:
    """Replay one value predictor over a stream slice, resuming from
    (and mutating) ``state``; hit bytes are appended to ``hits``."""
    kind, kwargs = parse_predictor_spec(spec)
    _VALUE_SLICES[kind](state, keys, values, hits, touched, **kwargs)


# ----------------------------------------------------------------------
# Branch predictors.
# ----------------------------------------------------------------------

def _gshare_slice(state, pcs, takens, hits, touched, index_bits=16):
    mask = (1 << index_bits) - 1
    counters = state["counters"]
    counters_get = counters.get
    history = state["history"]
    hit = hits.append
    touch = touched["counters"].add if touched is not None else None
    for pc, taken in zip(pcs, takens):
        index = (pc ^ history) & mask
        counter = counters_get(index, 1)
        if taken == 1:
            hit(1 if counter >= 2 else 0)
            if counter < 3:
                counters[index] = counter + 1
            history = ((history << 1) | 1) & mask
        else:
            hit(1 if counter < 2 and taken == 0 else 0)
            if counter > 0:
                counters[index] = counter - 1
            history = (history << 1) & mask
        if touch is not None:
            touch(index)
    state["history"] = history


def _local_slice(state, pcs, takens, hits, touched,
                 history_bits=12, table_bits=14):
    history_mask = (1 << history_bits) - 1
    table_mask = (1 << table_bits) - 1
    histories = state["histories"]
    histories_get = histories.get
    counters = state["counters"]
    counters_get = counters.get
    hit = hits.append
    if touched is not None:
        touch_slot = touched["histories"].add
        touch_idx = touched["counters"].add
    else:
        touch_slot = touch_idx = None
    for pc, taken in zip(pcs, takens):
        slot = pc & table_mask
        history = histories_get(slot, 0)
        index = (history ^ (pc << 2)) & table_mask
        counter = counters_get(index, 1)
        if taken == 1:
            hit(1 if counter >= 2 else 0)
            if counter < 3:
                counters[index] = counter + 1
            histories[slot] = ((history << 1) | 1) & history_mask
        else:
            hit(1 if counter < 2 and taken == 0 else 0)
            if counter > 0:
                counters[index] = counter - 1
            histories[slot] = (history << 1) & history_mask
        if touch_slot is not None:
            touch_slot(slot)
            touch_idx(index)


def run_branch_slice(kind: str, index_bits: int, state: dict, pcs,
                     takens, hits: bytearray,
                     touched: dict | None = None) -> None:
    """Replay the direction predictor over a branch-subset slice,
    resuming from (and mutating) ``state``."""
    if kind == "gshare":
        _gshare_slice(state, pcs, takens, hits, touched, index_bits)
    elif kind == "local":
        # make_branch_predictor("local") ignores index_bits.
        _local_slice(state, pcs, takens, hits, touched)
    else:
        raise ValueError(f"unknown branch predictor kind: {kind!r}")


def branch_state_for(kind: str) -> dict:
    """Fresh branch state for ``kind`` (convenience wrapper)."""
    return new_branch_state(kind)


def value_state_for(spec: str) -> dict:
    """Fresh value state for a predictor spec string."""
    kind, __ = parse_predictor_spec(spec)
    return new_value_state(kind)
