"""Columnar trace representation — the kernel's data layout.

:class:`TraceColumns` holds one decoded trace as flat parallel arrays
instead of per-record :class:`~repro.cpu.trace.DynInst` objects: one
entry per dynamic instruction in the record columns (``pc``,
``op_index``, ``out`` ...) and one entry per consumed operand in the
arc columns (``src_value``, ``src_prod`` ...), joined by the
``src_start`` offset column (record ``r`` owns arcs
``src_start[r] : src_start[r+1]``).  Everything the analysis engine
needs per element is precomputed **once per trace** at build time —
predictor input keys, arc group keys, D-node identities, the
branch/output/passthrough record subsets — so a multi-config sweep
pays the layout cost once and every analyzer runs as batched passes
over the columns (:mod:`repro.core.kernel.engine`).

Budget truncation never re-decodes: every column is prefix-closed, so
an analyzer with ``max_instructions = m`` reads ``pc[:m]`` and arcs
``[:src_start[m]]`` of the same object.  Predictor hit streams are
prefix-closed too (a predictor's verdict on element ``i`` depends only
on elements ``< i``), which is what makes the per-spec hit cache
(:meth:`input_hits` / :meth:`output_hits` / :meth:`branch_hits`)
shareable across configs and budgets.

Byte columns are ``bytearray`` so the engine can combine them with
big-integer bitwise arithmetic and count them with ``bytes.translate``
+ ``collections.Counter`` at C speed; everything is stdlib-only.
"""

from __future__ import annotations

import struct
from collections import Counter
from itertools import islice

from repro.cpu.trace import DynInst, Source
from repro.errors import ReproError
from repro.isa.opcodes import Category

# v2 record layout (mirrors repro.cpu.tracefile; kept in sync by
# tests/core/test_kernel_parity.py round-trips).
_REC_HEAD = struct.Struct("<IIBBbqI")
_SRC_FMT = "BqIIQ"
_SRC_GROUPS = [struct.Struct("<" + _SRC_FMT * n) for n in range(8)]
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_HAS_OUT = 0x01
_OUT_FLOAT = 0x02
_HAS_TAKEN = 0x04
_TAKEN = 0x08
_HAS_TARGET = 0x10
_NSRC_SHIFT = 5

_SRC_MEM = 0x01
_SRC_PRODUCED = 0x02
_SRC_FLOAT = 0x04

#: ``taken`` column encoding (``None`` is distinct from ``False``: a
#: direction predictor can never be *correct* about an unknown
#: direction, but it still trains towards not-taken).
TAKEN_FALSE = 0
TAKEN_TRUE = 1
TAKEN_NONE = 2

#: Categories whose output passes an input's predictability through.
_PASS_CATS = (Category.LOAD, Category.STORE, Category.JUMP_REG)

#: byte -> bool(byte) table, for nsrc -> has_src.
_NONZERO = bytes(1 if v else 0 for v in range(256))


class TraceColumns:
    """One decoded trace as flat parallel columns (see module doc)."""

    __slots__ = (
        # --- header facts -------------------------------------------------
        "n_static",      # max(n_static, 1), as the Analyzer uses it
        "n_records",
        "ops",           # op_index -> (op, Category, has_imm)
        # --- record columns (length n_records) ----------------------------
        "pc",            # list[int]
        "op_index",      # bytearray
        "out",           # list[int|float|None]
        "passthrough",   # list[int], -1 = None
        "taken",         # bytearray of TAKEN_* codes
        "nsrc",          # bytearray
        "has_imm",       # bytearray 0/1
        "has_src",       # bytearray 0/1
        "has_out",       # bytearray 0/1 (branches count as having one)
        "is_branch",     # bytearray 0/1
        # --- arc columns (length src_start[-1]) ----------------------------
        "src_start",     # list[int], length n_records + 1
        "src_value",     # list[int|float]
        "src_prod",      # list[int], -1 = D node
        "src_ppc",       # list[int], 0 for D arcs
        "src_mem",       # bytearray (for DynInst reconstruction)
        "src_loc",       # list[int]
        "in_key",        # list[int]: (pc << 2) | slot
        "group_key",     # list[int]: ArcGroupTable key
        # --- D-node bookkeeping --------------------------------------------
        "d_prefix",      # list[int], length n_records + 1: D arcs so far
        "d_ids",         # list[int]: d_key of each D arc, in arc order
        # --- record subsets (indices ascending; sliceable by bisect) -------
        "br_idx", "br_pc", "br_taken",
        "ov_idx", "ov_pc", "ov_val",
        "pt_idx", "pt_arc",
        # --- per-object caches ---------------------------------------------
        "_counts_cache",    # budget m -> per-PC execution counts list
        "_genclass_cache",  # count-so-far GenClass byte column
        "_pred_cache",      # (tier, spec, ...) -> (covered, hits)
    )

    def __init__(self):
        self.ops = []
        self.pc = []
        self.op_index = bytearray()
        self.out = []
        self.passthrough = []
        self.taken = bytearray()
        self.nsrc = bytearray()
        self.src_start = [0]
        self.src_value = []
        self.src_prod = []
        self.src_ppc = []
        self.src_mem = bytearray()
        self.src_loc = []
        self.in_key = []
        self.group_key = []
        self.d_prefix = [0]
        self.d_ids = []
        self._counts_cache = {}
        self._genclass_cache = None
        self._pred_cache = {}

    # ------------------------------------------------------------------
    # Builders.
    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, records, n_static: int,
                     limit: int | None = None) -> "TraceColumns":
        """Build columns from an iterable of :class:`DynInst`."""
        self = cls()
        self.n_static = n = max(n_static, 1)
        if limit is not None:
            records = islice(records, limit)
        op_table: dict[tuple, int] = {}
        ops = self.ops
        pcs = self.pc
        op_col = self.op_index
        outs = self.out
        pts = self.passthrough
        takens = self.taken
        nsrcs = self.nsrc
        starts = self.src_start
        values = self.src_value
        prods = self.src_prod
        ppcs = self.src_ppc
        mems = self.src_mem
        locs = self.src_loc
        in_keys = self.in_key
        group_keys = self.group_key
        d_prefix = self.d_prefix
        d_ids = self.d_ids
        d_count = 0
        arc_total = 0
        uid = 0
        for dyn in records:
            pc = dyn.pc
            pcs.append(pc)
            entry = (dyn.op, dyn.category, dyn.has_imm)
            op_index = op_table.get(entry)
            if op_index is None:
                op_index = op_table[entry] = len(op_table)
                if op_index > 0xFF:
                    raise ReproError(
                        "opcode table overflow (more than 256 distinct "
                        "opcode/category combinations)"
                    )
                ops.append(entry)
            op_col.append(op_index)
            outs.append(dyn.out)
            pts.append(-1 if dyn.passthrough is None else dyn.passthrough)
            taken = dyn.taken
            takens.append(
                TAKEN_NONE if taken is None
                else (TAKEN_TRUE if taken else TAKEN_FALSE)
            )
            srcs = dyn.srcs
            nsrcs.append(len(srcs))
            key_base = pc << 2
            for slot, src in enumerate(srcs):
                values.append(src.value)
                producer = src.producer
                if producer is None:
                    d_id = src.d_key()
                    d_ids.append(d_id)
                    d_count += 1
                    prods.append(-1)
                    ppcs.append(0)
                    group_keys.append(-(d_id * n + pc) - 1)
                else:
                    prods.append(producer)
                    ppcs.append(src.producer_pc)
                    group_keys.append(
                        (producer * n + src.producer_pc) * n + pc
                    )
                mems.append(1 if src.is_mem else 0)
                locs.append(src.loc)
                in_keys.append(key_base | slot)
            arc_total += len(srcs)
            starts.append(arc_total)
            d_prefix.append(d_count)
            uid += 1
        self.n_records = uid
        self._finish()
        return self

    @classmethod
    def from_v2(cls, buf, header: dict, path="<trace>") -> "TraceColumns":
        """Build columns straight from a v2 trace body (no DynInst)."""
        return cls.from_v2_range(
            buf, header, 0, header["n_records"], 0, path)

    @classmethod
    def from_v2_range(cls, buf, header: dict, r0: int, r1: int,
                      byte_off: int, path="<trace>") -> "TraceColumns":
        """Build columns for records ``[r0, r1)`` of a v2 trace body.

        ``byte_off`` is the body offset of record ``r0`` (the layout is
        fixed-width: ``23*r + 25*arcs_before_r``, so a segment index
        only needs the arc count at each boundary).  The resulting
        columns are *local* — record/arc indices start at zero — but
        producer uids and ``group_key`` stay global because the v2
        format stores producers as absolute uids.  This is what lets a
        segment worker decode only its own byte range
        (:mod:`repro.core.shard`).
        """
        self = cls()
        self.n_static = n = max(header["n_static"], 1)
        self.ops = [
            (entry[0], Category(entry[1]), bool(entry[2]))
            for entry in header["ops"]
        ]
        n_records = r1 - r0
        rec_head = _REC_HEAD.unpack_from
        src_groups = _SRC_GROUPS
        pack_i64 = _I64.pack
        unpack_f64 = _F64.unpack
        pcs = self.pc
        op_col = self.op_index
        outs = self.out
        pts = self.passthrough
        takens = self.taken
        nsrcs = self.nsrc
        starts = self.src_start
        values = self.src_value
        prods = self.src_prod
        ppcs = self.src_ppc
        mems = self.src_mem
        locs = self.src_loc
        in_keys = self.in_key
        group_keys = self.group_key
        d_prefix = self.d_prefix
        d_ids = self.d_ids
        d_count = 0
        arc_total = 0
        pos = byte_off
        try:
            for _ in range(n_records):
                __, pc, flags, op_index, passthrough, out_bits, __t = \
                    rec_head(buf, pos)
                pos += 23
                pcs.append(pc)
                op_col.append(op_index)
                if flags & _HAS_OUT:
                    if flags & _OUT_FLOAT:
                        (out,) = unpack_f64(pack_i64(out_bits))
                        outs.append(out)
                    else:
                        outs.append(out_bits)
                else:
                    outs.append(None)
                pts.append(passthrough)
                takens.append(
                    (TAKEN_TRUE if flags & _TAKEN else TAKEN_FALSE)
                    if flags & _HAS_TAKEN else TAKEN_NONE
                )
                n_srcs = flags >> _NSRC_SHIFT
                nsrcs.append(n_srcs)
                if n_srcs:
                    fields = src_groups[n_srcs].unpack_from(buf, pos)
                    pos += 25 * n_srcs
                    key_base = pc << 2
                    slot = 0
                    for base in range(0, 5 * n_srcs, 5):
                        src_flags = fields[base]
                        value = fields[base + 1]
                        if src_flags & _SRC_FLOAT:
                            (value,) = unpack_f64(pack_i64(value))
                        values.append(value)
                        loc = fields[base + 4]
                        locs.append(loc)
                        if src_flags & _SRC_PRODUCED:
                            producer = fields[base + 2]
                            producer_pc = fields[base + 3]
                            prods.append(producer)
                            ppcs.append(producer_pc)
                            group_keys.append(
                                (producer * n + producer_pc) * n + pc
                            )
                            mems.append(1 if src_flags & _SRC_MEM else 0)
                        else:
                            if src_flags & _SRC_MEM:
                                d_id = loc
                                mems.append(1)
                            else:
                                d_id = 0x2_0000_0000 + loc
                                mems.append(0)
                            d_ids.append(d_id)
                            d_count += 1
                            prods.append(-1)
                            ppcs.append(0)
                            group_keys.append(-(d_id * n + pc) - 1)
                        in_keys.append(key_base | slot)
                        slot += 1
                    arc_total += n_srcs
                starts.append(arc_total)
                d_prefix.append(d_count)
        except (struct.error, IndexError, TypeError) as error:
            raise ReproError(f"truncated trace file: {path}") from error
        self.n_records = n_records
        self._finish()
        return self

    # ------------------------------------------------------------------
    # Derived columns and subsets.
    # ------------------------------------------------------------------

    def _finish(self) -> None:
        """Compute flag columns and record subsets from the primaries."""
        m = self.n_records
        ops = self.ops
        # Per-op lookup tables -> per-record flags via bytes.translate.
        pad = 256 - len(ops)
        br_table = bytes(
            1 if cat is Category.BRANCH else 0 for __, cat, __i in ops
        ) + bytes(pad)
        imm_table = bytes(
            1 if has_imm else 0 for __, __c, has_imm in ops
        ) + bytes(pad)
        pass_table = bytes(
            1 if cat in _PASS_CATS else 0 for __, cat, __i in ops
        ) + bytes(pad)
        op_col = bytes(self.op_index)
        self.is_branch = is_branch = bytearray(op_col.translate(br_table))
        self.has_imm = bytearray(op_col.translate(imm_table))
        self.has_src = bytearray(bytes(self.nsrc).translate(_NONZERO))
        pass_cat = op_col.translate(pass_table)
        out_none = bytes(
            0 if value is not None else 1 for value in self.out
        )
        if m:
            ones = int.from_bytes(b"\x01" * m, "little")
            br_i = int.from_bytes(is_branch, "little")
            none_i = int.from_bytes(out_none, "little")
            pt_none = bytes(1 if p < 0 else 0 for p in self.passthrough)
            ptn_i = int.from_bytes(pt_none, "little")
            pass_i = int.from_bytes(pass_cat, "little")
            # has_out: a branch, or any record carrying an out value.
            self.has_out = bytearray(
                (br_i | (none_i ^ ones)).to_bytes(m, "little")
            )
            # Output-predictor subset: non-branch, real out, no
            # passthrough, not a pass-through category.
            ov_sel = ((none_i ^ ones) & (br_i ^ ones) & ptn_i
                      & (pass_i ^ ones)).to_bytes(m, "little")
            # Passthrough subset: non-branch, real out, passthrough set.
            pt_sel = ((none_i ^ ones) & (br_i ^ ones)
                      & (ptn_i ^ ones)).to_bytes(m, "little")
        else:
            self.has_out = bytearray()
            ov_sel = b""
            pt_sel = b""
        rng = range(m)
        from itertools import compress
        self.br_idx = list(compress(rng, is_branch))
        pcs = self.pc
        takens = self.taken
        self.br_pc = [pcs[i] for i in self.br_idx]
        self.br_taken = bytearray(takens[i] for i in self.br_idx)
        self.ov_idx = list(compress(rng, ov_sel))
        outs = self.out
        self.ov_pc = [pcs[i] for i in self.ov_idx]
        self.ov_val = [outs[i] for i in self.ov_idx]
        self.pt_idx = list(compress(rng, pt_sel))
        starts = self.src_start
        pts = self.passthrough
        self.pt_arc = [starts[i] + pts[i] for i in self.pt_idx]

    # ------------------------------------------------------------------
    # Budget-dependent derived state (cached).
    # ------------------------------------------------------------------

    def counts_for(self, m: int) -> list:
        """Per-PC execution counts over the first ``m`` records."""
        cached = self._counts_cache.get(m)
        if cached is not None:
            return cached
        counts = [0] * self.n_static
        tally = Counter(self.pc if m == self.n_records else self.pc[:m])
        for pc, count in tally.items():
            counts[pc] = count
        self._counts_cache[m] = counts
        return counts

    def genclass_so_far(self) -> bytearray:
        """Per-arc :class:`~repro.core.events.GenClass` codes using the
        count-so-far write-once approximation (profile-free analysis).

        Matches the reference analyzer exactly: the record's own
        execution is counted *before* its arcs are classified, so the
        column is independent of any budget prefix.
        """
        cached = self._genclass_cache
        if cached is not None:
            return cached
        counts = [0] * self.n_static
        out = bytearray(self.src_start[-1])
        pcs = self.pc
        starts = self.src_start
        prods = self.src_prod
        ppcs = self.src_ppc
        for r in range(self.n_records):
            counts[pcs[r]] += 1
            for a in range(starts[r], starts[r + 1]):
                prod = prods[a]
                if prod < 0:
                    out[a] = 1                      # GenClass.D
                elif counts[ppcs[a]] == 1:
                    out[a] = 2                      # GenClass.W
                # else 0                            # GenClass.C
        self._genclass_cache = out
        return out

    def genclass_profiled(self, profile_counts) -> bytearray:
        """Per-arc GenClass codes with whole-run profile counts."""
        out = bytearray(self.src_start[-1])
        ppcs = self.src_ppc
        a = 0
        for prod in self.src_prod:
            if prod < 0:
                out[a] = 1
            elif profile_counts[ppcs[a]] == 1:
                out[a] = 2
            a += 1
        return out

    # ------------------------------------------------------------------
    # Predictor hit-stream cache.
    #
    # Hit streams are pure functions of (column prefix, spec) and
    # prefix-closed, so one computation at the largest budget seen
    # serves every config that shares the spec: the engine slices.
    # ------------------------------------------------------------------

    def _cached_hits(self, key: tuple, need: int, compute):
        cached = self._pred_cache.get(key)
        if cached is not None and cached[0] >= need:
            return cached[1]
        hits = compute(need)
        self._pred_cache[key] = (need, hits)
        return hits

    def input_hits(self, spec: str, need: int) -> bytearray:
        """Hit stream of one bank's *input* predictor over the first
        ``need`` arcs (0/1 per arc; may be longer than ``need``)."""
        from repro.core.kernel.passes import run_value_pass

        return self._cached_hits(
            ("in", spec), need,
            lambda n: run_value_pass(spec, self.in_key, self.src_value, n),
        )

    def output_hits(self, spec: str, need: int) -> bytearray:
        """Hit stream of one bank's *output* predictor over the first
        ``need`` output-predicted records (the ``ov_idx`` subset)."""
        from repro.core.kernel.passes import run_value_pass

        return self._cached_hits(
            ("out", spec), need,
            lambda n: run_value_pass(spec, self.ov_pc, self.ov_val, n),
        )

    def branch_hits(self, kind: str, index_bits: int, need: int) -> bytearray:
        """Hit stream of the shared direction predictor over the first
        ``need`` branch records (the ``br_idx`` subset)."""
        from repro.core.kernel.passes import run_branch_pass

        return self._cached_hits(
            ("br", kind, index_bits), need,
            lambda n: run_branch_pass(
                kind, index_bits, self.br_pc, self.br_taken, n
            ),
        )

    # ------------------------------------------------------------------
    # Reconstruction (reference-engine fallback on columnar input).
    # ------------------------------------------------------------------

    def to_records(self) -> list:
        """Rebuild the :class:`DynInst` list (uid = stream index).

        Used when a caller holding columns needs the reference engine
        (e.g. an ``auto`` fallback on a config the kernel does not
        support).  ``target`` is not stored in the columns — the
        analysis never reads it — so reconstructed records carry None.
        """
        records = []
        append = records.append
        ops = self.ops
        starts = self.src_start
        values = self.src_value
        prods = self.src_prod
        ppcs = self.src_ppc
        mems = self.src_mem
        locs = self.src_loc
        takens = self.taken
        for r in range(self.n_records):
            op, category, has_imm = ops[self.op_index[r]]
            srcs = []
            for a in range(starts[r], starts[r + 1]):
                prod = prods[a]
                if prod < 0:
                    srcs.append(Source(values[a], None, None,
                                       bool(mems[a]), locs[a]))
                else:
                    srcs.append(Source(values[a], prod, ppcs[a],
                                       bool(mems[a]), locs[a]))
            taken = takens[r]
            passthrough = self.passthrough[r]
            append(DynInst(
                uid=r,
                pc=self.pc[r],
                op=op,
                category=category,
                has_imm=has_imm,
                srcs=tuple(srcs),
                out=self.out[r],
                passthrough=None if passthrough < 0 else passthrough,
                taken=None if taken == TAKEN_NONE else taken == TAKEN_TRUE,
                target=None,
            ))
        return records
