"""The columnar analysis engine.

Produces, for one :class:`~repro.core.kernel.columns.TraceColumns`
object and one :class:`~repro.core.analysis.AnalysisConfig`, an
:class:`~repro.core.stats.AnalysisResult` whose ``result_to_dict``
export is byte-identical to the reference analyzer's — the differential
suite in tests/core/test_kernel_parity.py enforces this for every
fixed workload and a fuzzed ``gen:`` grid.

The work is organised as batched passes instead of per-record dispatch:

1. **bank passes** — each predictor bank's hit stream is replayed in
   one tight loop per (spec, tier) by :mod:`repro.core.kernel.passes`,
   cached on the columns object and shared across configs and budgets;
2. **bit assembly** — per-bank hit streams are combined into per-arc
   ``Y`` and per-record ``O``/``U``/``I``/``X`` byte columns with
   big-integer bitwise arithmetic (each byte holds one element's
   per-bank bits, so shifts below 8 never carry across elements);
3. **classification** — a composite byte per (record, bank) encoding
   (has_p, has_n, has_imm, out_p, has_out, is_branch, has_src) is
   mapped through precomputed 256-entry ``bytes.translate`` tables and
   tallied with ``collections.Counter`` at C speed; run-length stats
   come from splitting the translated selector on zero bytes, which
   visits runs in stream order so Counter insertion order (part of the
   export contract) matches the streaming trackers;
4. **paths** — the generator-influence walk is inherently sequential
   (each value's influence feeds its consumers'), so it remains a
   Python loop, but one that touches only predicted arcs and reads
   precomputed byte columns instead of driving five predictors.

Everything is stdlib-only; see docs/kernel.md for the full layout.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from itertools import compress, count

from repro.core.arcs import ArcGroupTable
from repro.core.events import InKind, _KIND_TABLE
from repro.core.paths import _MASK_BITS, _EMPTY_SET
from repro.core.stats import (
    AnalysisResult,
    BranchStats,
    NodeStats,
    PathStats,
    PredictorResult,
    SequenceStats,
    TreeStats,
)
from repro.core.unpred import CriticalPoints
from repro.obs import get_recorder

# ----------------------------------------------------------------------
# Composite-byte layout: one byte per (record, bank) holding every flag
# node classification needs.  hn is derived from the intersection
# column (``I`` stores the full mask for 0-source records, mirroring
# the reference's ``inter_y`` initialisation), so ``not hn`` is exactly
# "all sources predicted or no sources".
# ----------------------------------------------------------------------

_HP = 0x01   # union bit: >= 1 correctly predicted data input
_HN = 0x02   # >= 1 incorrectly predicted data input
_HI = 0x04   # has an immediate input
_OP = 0x08   # output predicted (this bank's out bit)
_HO = 0x10   # has a classifiable output
_BR = 0x20   # conditional branch
_HS = 0x40   # has data sources

_NO_OUTPUT = 12  # node code for "no classifiable output"


def _build_tables():
    node = bytearray(256)
    branch = bytearray(256)
    seq = bytearray(256)
    unpred = bytearray(256)
    miss = bytearray(256)
    term = bytearray(256)
    for v in range(128):
        hp = v & _HP
        hn = v & _HN
        hi = v & _HI
        op = v & _OP
        ho = v & _HO
        br = v & _BR
        hs = v & _HS
        kind = _KIND_TABLE[
            (4 if hp else 0) | (2 if hn else 0) | (1 if hi else 0)
        ]
        code = kind * 2 + (1 if op else 0)
        node[v] = code if ho else _NO_OUTPUT
        branch[v] = code if br else _NO_OUTPUT
        # Fully predicted: every source predicted (or none) and the
        # output predicted (or absent).
        seq[v] = 1 if not hn and (not ho or op) else 0
        # Fully mispredicted: no predicted source, no predicted
        # output, and at least one actual prediction made.
        unpred[v] = 1 if (not hp and not (op and ho)
                          and (hs or ho)) else 0
        miss[v] = 1 if ho and not op else 0
        term[v] = 1 if ho and not op and hp else 0
    return (bytes(node), bytes(branch), bytes(seq), bytes(unpred),
            bytes(miss), bytes(term))


(_NODE_T, _BRANCH_T, _SEQ_T, _UNPRED_T, _MISS_T, _TERM_T) = _build_tables()

#: node kind -> GenClass when a generate node (paths.NODE_GEN_CLASS).
_NODE_GC = {int(InKind.II): 3, int(InKind.NN): 4, int(InKind.IN): 5}


# ----------------------------------------------------------------------
# Derived bit columns (cached per (specs, branch predictor) on the
# columns object; prefix-closed, recomputed only when a larger budget
# is requested).
# ----------------------------------------------------------------------

def _ones(n: int) -> int:
    return int.from_bytes(b"\x01" * n, "little") if n else 0


def _derived(columns, specs, br_kind, br_bits, m, A):
    key = ("derived", specs, br_kind, br_bits)
    cached = columns._pred_cache.get(key)
    if cached is not None and cached["m"] >= m:
        return cached
    nk = len(specs)
    full_mask = (1 << nk) - 1
    # Per-arc Y: each arc's byte holds every bank's input-hit bit.
    y_int = 0
    for k, spec in enumerate(specs):
        hits = columns.input_hits(spec, A)
        y_int |= int.from_bytes(memoryview(hits)[:A], "little") << k
    yb = y_int.to_bytes(A, "little")
    # Per-record O: the reference's out_flags byte stream.
    out = bytearray(m)
    br_cnt = bisect_left(columns.br_idx, m)
    if br_cnt and full_mask:
        hits = memoryview(columns.branch_hits(br_kind, br_bits,
                                              br_cnt))[:br_cnt]
        br_idx = columns.br_idx
        for i, hit in zip(br_idx, hits):
            if hit:
                out[i] = full_mask
    ov_cnt = bisect_left(columns.ov_idx, m)
    if ov_cnt and nk:
        o_int = 0
        for k, spec in enumerate(specs):
            hits = columns.output_hits(spec, ov_cnt)
            o_int |= int.from_bytes(
                memoryview(hits)[:ov_cnt], "little"
            ) << k
        for i, value in zip(columns.ov_idx, o_int.to_bytes(ov_cnt,
                                                           "little")):
            if value:
                out[i] = value
    for i, arc in zip(columns.pt_idx, columns.pt_arc):
        if i >= m:
            break
        value = yb[arc]
        if value:
            out[i] = value
    # Per-record U (union) and I (intersection; full mask when the
    # record has no sources) folds over the record's arcs.
    union = bytearray(m)
    inter = bytearray(m)
    starts = columns.src_start
    a = 0
    for r in range(m):
        b = starts[r + 1]
        if b == a:
            inter[r] = full_mask
        else:
            u = yb[a]
            i_ = u
            for j in range(a + 1, b):
                v = yb[j]
                u |= v
                i_ &= v
            union[r] = u
            inter[r] = i_
        a = b
    # Per-arc X: the producer's O byte (0 for D arcs).
    x = bytearray(A)
    prods = columns.src_prod
    for j in range(A):
        p = prods[j]
        if p >= 0:
            x[j] = out[p]
    entry = {"m": m, "A": A, "yb": yb, "out": out,
             "union": union, "inter": inter, "x": x}
    columns._pred_cache[key] = entry
    return entry


def _comp_base(columns, m):
    """Bank-independent composite bits (him | ho | br | hs), cached."""
    cached = columns._pred_cache.get("comp_base")
    if cached is None:
        n = columns.n_records
        base = (
            (int.from_bytes(columns.has_imm, "little") << 2)
            | (int.from_bytes(columns.has_out, "little") << 4)
            | (int.from_bytes(columns.is_branch, "little") << 5)
            | (int.from_bytes(columns.has_src, "little") << 6)
        )
        cached = base.to_bytes(n, "little") if n else b""
        columns._pred_cache["comp_base"] = cached
    return cached[:m]


# ----------------------------------------------------------------------
# The sequential paths walk (PathTracker, array-ported).
# ----------------------------------------------------------------------

def _paths_pass(m, starts, ybk, xbk, prods, gcol, codes,
                track_trees, gen_cap, stats, trees):
    # Order-sensitive tallies (combo_counts and the tree histograms
    # export in first-seen order) are collected as plain lists in
    # stream order and folded with ``Counter.update`` at the end —
    # same insertion order as the reference's per-element increments,
    # counted at C speed.  The walk itself visits only predicted arcs:
    # ``pred_idx`` is the compressed index list of ybk's set bits, and
    # ``nxt`` leapfrogs whole records without predicted inputs.
    gen_counts = stats.gen_counts
    node_gc = _NODE_GC
    end = starts[m]
    pred_idx = list(compress(count(), ybk))
    pred_idx.append(end)  # sentinel: never < any record bound
    counted = []          # every count_propagate call's mask, in order
    count_mask = counted.append
    masks = []
    store_mask = masks.append
    pi = 0
    nxt = pred_idx[0]
    if track_trees:
        sets_ = []
        dists = []
        gens = []
        store_set = sets_.append
        store_dist = dists.append
        inf_list = []     # len(gen_set) per count_propagate, in order
        dist_list = []    # dist per count_propagate, in order
        count_inf = inf_list.append
        count_dist = dist_list.append
        empty = _EMPTY_SET
        truncated = 0
        for r in range(m):
            b = starts[r + 1]
            cur_mask = 0
            cur_set = empty
            cur_dist = -1
            while nxt < b:
                j = nxt
                pi += 1
                nxt = pred_idx[pi]
                if xbk[j]:
                    p = prods[j]
                    pmask = masks[p]
                    if not pmask:
                        continue
                    gen_set = sets_[p]
                    dist = dists[p] + 1
                    count_mask(pmask)
                    count_inf(len(gen_set))
                    count_dist(dist)
                    for gid in gen_set:
                        record = gens[gid]
                        if dist > record[0]:
                            record[0] = dist
                        record[1] += 1
                    cur_mask |= pmask
                    if gen_set:
                        if cur_set:
                            merged = cur_set | gen_set
                            if len(merged) > gen_cap:
                                merged = frozenset(
                                    sorted(merged)[:gen_cap]
                                )
                                truncated += 1
                            cur_set = merged
                        else:
                            cur_set = gen_set
                    if dist > cur_dist:
                        cur_dist = dist
                else:
                    gc = gcol[j]
                    gen_counts[gc] += 1
                    gens.append([0, 0])
                    gen_set = frozenset((len(gens) - 1,))
                    cur_mask |= 1 << gc
                    if cur_set:
                        merged = cur_set | gen_set
                        if len(merged) > gen_cap:
                            merged = frozenset(sorted(merged)[:gen_cap])
                            truncated += 1
                        cur_set = merged
                    else:
                        cur_set = gen_set
                    if cur_dist < 0:
                        cur_dist = 0
            code = codes[r]
            if code == _NO_OUTPUT or not code & 1:
                store_mask(0)
                store_set(empty)
                store_dist(0)
            elif cur_mask:
                dist = cur_dist + 1
                count_mask(cur_mask)
                count_inf(len(cur_set))
                count_dist(dist)
                for gid in cur_set:
                    record = gens[gid]
                    if dist > record[0]:
                        record[0] = dist
                    record[1] += 1
                store_mask(cur_mask)
                store_set(cur_set)
                store_dist(dist)
            else:
                gc = node_gc.get(code >> 1)
                if gc is None:
                    store_mask(0)
                    store_set(empty)
                    store_dist(0)
                else:
                    gen_counts[gc] += 1
                    gens.append([0, 0])
                    store_mask(1 << gc)
                    store_set(frozenset((len(gens) - 1,)))
                    store_dist(0)
        trees.truncated = truncated
        trees.influence_hist.update(inf_list)
        trees.distance_hist.update(dist_list)
        depth_hist = trees.depth_hist
        agg_hist = trees.agg_hist
        for depth, n in gens:
            depth_hist[depth] += 1
            agg_hist[depth] += n
    else:
        for r in range(m):
            b = starts[r + 1]
            cur_mask = 0
            while nxt < b:
                j = nxt
                pi += 1
                nxt = pred_idx[pi]
                if xbk[j]:
                    pmask = masks[prods[j]]
                    if pmask:
                        count_mask(pmask)
                        cur_mask |= pmask
                else:
                    gc = gcol[j]
                    gen_counts[gc] += 1
                    cur_mask |= 1 << gc
            code = codes[r]
            if code == _NO_OUTPUT or not code & 1:
                store_mask(0)
            elif cur_mask:
                count_mask(cur_mask)
                store_mask(cur_mask)
            else:
                gc = node_gc.get(code >> 1)
                if gc is None:
                    store_mask(0)
                else:
                    gen_counts[gc] += 1
                    store_mask(1 << gc)
    stats.propagate_elements = len(counted)
    stats.combo_counts.update(counted)
    class_counts = stats.class_counts
    mask_bits = _MASK_BITS
    for mask, n in stats.combo_counts.items():
        for bit in mask_bits[mask]:
            class_counts[bit] += n


# ----------------------------------------------------------------------
# Run-length tallies: split the 0/1 selector on zero bytes; parts
# arrive in stream order, so Counter insertion order matches the
# streaming trackers' first-seen order (an export contract).
# ----------------------------------------------------------------------

def _run_lengths(selector: bytes) -> SequenceStats:
    stats = SequenceStats()
    stats.lengths.update(
        len(part) for part in selector.split(b"\x00") if part
    )
    return stats


# ----------------------------------------------------------------------
# The engine proper.
# ----------------------------------------------------------------------

def analyze_columns(columns, config, name="trace", profile_counts=None,
                    static_counts=None) -> AnalysisResult:
    """Analyse one budget-sliced view of ``columns`` under ``config``.

    Equivalent to feeding the first ``config.max_instructions`` records
    through a reference :class:`~repro.core.analysis.Analyzer`.  The
    caller is responsible for engine resolution (this function assumes
    the config is columnar-supported) and for the enclosing
    ``"analyze"`` span.
    """
    cfg = config
    n_records = columns.n_records
    m = (n_records if cfg.max_instructions is None
         else min(cfg.max_instructions, n_records))
    A = columns.src_start[m]
    n_static = columns.n_static
    specs = cfg.predictors
    nk = len(specs)
    recorder = get_recorder()

    with recorder.span("analyze.kernel.banks"):
        derived = _derived(
            columns, specs, cfg.branch_predictor, cfg.gshare_bits, m, A
        )

    with recorder.span("analyze.kernel.classify"):
        yb = derived["yb"][:A]
        out_col = derived["out"]
        union_col = derived["union"]
        inter_col = derived["inter"]
        x_col = derived["x"]
        if derived["m"] > m:
            out_col = out_col[:m]
            union_col = union_col[:m]
            inter_col = inter_col[:m]
            x_col = x_col[:A]
        out_v = int.from_bytes(out_col, "little")
        union_v = int.from_bytes(union_col, "little")
        inter_v = int.from_bytes(inter_col, "little")
        y_v = int.from_bytes(yb, "little")
        x_v = int.from_bytes(x_col, "little")
        ones_m = _ones(m)
        ones_a = _ones(A)
        base_v = int.from_bytes(_comp_base(columns, m), "little")

        if static_counts is None:
            final_counts = columns.counts_for(m)
        else:
            final_counts = static_counts
        gcol = (
            columns.genclass_so_far() if profile_counts is None
            else columns.genclass_profiled(profile_counts)
        )

        result = AnalysisResult(
            name=name,
            nodes=m,
            arcs=A,
            d_nodes=len(set(columns.d_ids[:columns.d_prefix[m]])),
            d_arcs=columns.d_prefix[m],
            static_instructions=n_static,
            static_counts=list(final_counts),
        )

        # --- per-bank composite classification -------------------------
        # Everything a bank's PredictorResult contains derives from its
        # composite stream (plus spec-determined hit columns and
        # columns-determined layout), so a finished result can be cached
        # on the columns object keyed by (spec, comp, tracking flags)
        # and reused verbatim when another config in the sweep runs the
        # same bank — e.g. a single-bank ablation of the default tuple.
        # External per-PC counts change gcol / final_counts without
        # touching the key, so those calls bypass the cache entirely.
        op_col = columns.op_index
        pcs = columns.pc
        ops = columns.ops
        starts = columns.src_start
        prods = columns.src_prod
        cacheable = profile_counts is None and static_counts is None
        bank_cache = columns._pred_cache
        preds = []
        comp_list = []
        bank_keys = [None] * nk
        fresh = []
        for k in range(nk):
            hp = (union_v >> k) & ones_m
            hn = ((inter_v >> k) & ones_m) ^ ones_m
            op = (out_v >> k) & ones_m
            comp = (base_v | hp | (hn << 1) | (op << 3)).to_bytes(
                m, "little"
            )
            comp_list.append(comp)
            if cacheable:
                tracked = specs[k] in cfg.trees_for
                bkey = (
                    "bankres", specs[k], comp,
                    cfg.track_ops, cfg.track_branches,
                    cfg.track_sequences, cfg.track_unpred,
                    cfg.track_critical, cfg.track_paths,
                    tracked, cfg.gen_cap if tracked else None,
                )
                cached = bank_cache.get(bkey)
                if cached is not None:
                    preds.append(cached)
                    continue
                bank_keys[k] = bkey
            fresh.append(k)
            node_codes = comp.translate(_NODE_T)
            node_stats = NodeStats()
            class_counts = node_stats.class_counts
            for code, count in Counter(node_codes).items():
                if code == _NO_OUTPUT:
                    node_stats.no_output = count
                else:
                    class_counts[code >> 1][code & 1] = count
            pred = PredictorResult(kind=specs[k], nodes=node_stats)
            if cfg.track_ops:
                node_ops = Counter()
                for (code, opx), count in Counter(
                    zip(node_codes, op_col)
                ).items():
                    if code != _NO_OUTPUT:
                        node_ops[
                            (InKind(code >> 1), bool(code & 1),
                             ops[opx][0])
                        ] = count
                pred.node_ops = node_ops
            if cfg.track_branches:
                branches = BranchStats()
                for code, count in Counter(
                    comp.translate(_BRANCH_T)
                ).items():
                    if code != _NO_OUTPUT:
                        branches.class_counts[code >> 1][code & 1] = count
                pred.branches = branches
            if cfg.track_sequences:
                pred.sequences = _run_lengths(comp.translate(_SEQ_T))
            if cfg.track_unpred:
                pred.unpred = _run_lengths(comp.translate(_UNPRED_T))
            if cfg.track_critical:
                critical = CriticalPoints(n_static)
                misses = critical.output_misses
                for pc, count in Counter(
                    compress(pcs, comp.translate(_MISS_T))
                ).items():
                    misses[pc] = count
                terms = critical.terminations
                for pc, count in Counter(
                    compress(pcs, comp.translate(_TERM_T))
                ).items():
                    terms[pc] = count
                pred.critical = critical
            preds.append(pred)

        # --- paths ------------------------------------------------------
        if cfg.track_paths:
            for k in fresh:
                pred = preds[k]
                track_trees = specs[k] in cfg.trees_for
                stats = PathStats()
                trees = TreeStats() if track_trees else None
                ybk = ((y_v >> k) & ones_a).to_bytes(A, "little")
                xbk = ((x_v >> k) & ones_a).to_bytes(A, "little")
                codes = comp_list[k].translate(_NODE_T)
                _paths_pass(
                    m, starts, ybk, xbk, prods, gcol, codes,
                    track_trees, cfg.gen_cap, stats, trees,
                )
                pred.paths = stats
                pred.trees = trees

        # --- arcs -------------------------------------------------------
        if fresh:
            group_keys = columns.group_key
            group_slice = (group_keys if A == len(group_keys)
                           else group_keys[:A])
            uses = (bank_cache.get(("uses", m))
                    if static_counts is None else None)
            if uses is None:
                use_class = ArcGroupTable._use_class
                uses = {
                    key: use_class(key, size, final_counts, n_static)
                    for key, size in Counter(group_slice).items()
                }
                if static_counts is None:
                    bank_cache[("uses", m)] = uses
            for k in fresh:
                xk = (x_v >> k) & ones_a
                yk = (y_v >> k) & ones_a
                # Each byte of xk/yk is 0 or 1, so the shift cannot
                # carry across byte lanes.
                combo_bytes = ((xk << 1) | yk).to_bytes(A, "little")
                counts_k = preds[k].arcs.counts
                for (key, combo), count in Counter(
                    zip(group_slice, combo_bytes)
                ).items():
                    counts_k[uses[key]][combo] += count

        if cacheable:
            for k in fresh:
                bank_cache[bank_keys[k]] = preds[k]

        # --- recorder counters (mirrors Analyzer.finalize) --------------
        if recorder.enabled:
            recorder.count("analyze.passes", 1)
            recorder.count("analyze.nodes", m)
            recorder.count("analyze.arcs", A)
            for k, pred in enumerate(preds):
                for behavior, count in (
                    pred.nodes.behavior_counts().items()
                ):
                    if count:
                        recorder.count(
                            f"analyze.pred.{specs[k]}."
                            f"{behavior.name.lower()}", count,
                        )
        for pred in preds:
            result.predictors[pred.kind] = pred
    return result


def analyze_columns_many(columns, configs, name="trace",
                         profile_counts=None,
                         static_counts=None) -> list[AnalysisResult]:
    """Analyse ``columns`` under many configs, sharing bank passes.

    Hit streams (and the derived bit columns) are cached on the columns
    object keyed by predictor spec, so configs that share specs pay for
    each predictor pass once — the multi-config analogue of the
    reference path's ``analyze_many`` single decode.
    """
    return [
        analyze_columns(columns, config, name, profile_counts,
                        static_counts)
        for config in configs
    ]
