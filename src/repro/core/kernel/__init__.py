"""Columnar analysis kernel and engine selection.

The kernel package provides a drop-in fast path for
:mod:`repro.core.analysis`: the trace is decoded once into flat
parallel columns (:mod:`~repro.core.kernel.columns`), predictor banks
run as batched passes (:mod:`~repro.core.kernel.passes`), and node/arc
classification happens through translate tables and Counters
(:mod:`~repro.core.kernel.engine`) — byte-identical results, measured
≥5x faster on the analyze phase (BENCH_runner.json).

Engine selection is surfaced as :class:`AnalysisEngine`:

* ``auto`` (the default) — columnar whenever the config supports it,
  silently falling back to the reference loop otherwise (counted under
  the ``analyze.fallback`` obs counter and logged once per call site);
* ``columnar`` — force the kernel; unsupported configs raise
  :class:`KernelUnsupportedError`;
* ``reference`` — force the original per-instruction loop (the pinned
  baseline the kernel is differentially tested against).

The engine is an execution detail, not part of an analysis' identity:
``repro.runner`` job keys deliberately exclude it, so switching engines
hits the same caches.
"""

from __future__ import annotations

import enum
import logging

from repro.errors import ReproError

log = logging.getLogger(__name__)


class KernelUnsupportedError(ReproError):
    """The columnar engine was forced for a config it cannot run."""


class AnalysisEngine(str, enum.Enum):
    """Which analysis implementation executes a config."""

    AUTO = "auto"
    COLUMNAR = "columnar"
    REFERENCE = "reference"

    def __str__(self) -> str:  # argparse-friendly
        return self.value


#: Values accepted anywhere an engine is taken (CLI, api.configure).
ENGINE_CHOICES = tuple(engine.value for engine in AnalysisEngine)

_default_engine = AnalysisEngine.AUTO


def get_default_engine() -> AnalysisEngine:
    """The process-wide engine used when a call site passes None."""
    return _default_engine


def set_default_engine(engine) -> AnalysisEngine:
    """Set the process-wide default engine; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = coerce_engine(engine)
    return previous


def coerce_engine(engine) -> AnalysisEngine:
    """Accept an :class:`AnalysisEngine` or its string value."""
    if isinstance(engine, AnalysisEngine):
        return engine
    try:
        return AnalysisEngine(engine)
    except ValueError:
        raise ValueError(
            f"unknown analysis engine: {engine!r} "
            f"(known: {', '.join(ENGINE_CHOICES)})"
        ) from None


def columnar_unsupported(config) -> str | None:
    """Why the columnar engine cannot run ``config`` (None = it can).

    Two configs are out of scope by design: instruction-reuse tracking
    consumes whole :class:`~repro.cpu.trace.DynInst` records, and more
    than four predictor banks would overflow the kernel's 2-bits-per-
    bank combo byte.
    """
    if config.track_reuse:
        return "track_reuse consumes per-record DynInst state"
    if len(config.predictors) > 4:
        return (
            f"{len(config.predictors)} predictor banks exceed the "
            f"kernel's 4-bank combo byte"
        )
    return None


def resolve_engine(engine, configs, record: bool = True) -> AnalysisEngine:
    """Resolve a requested engine against concrete configs.

    Returns ``COLUMNAR`` or ``REFERENCE`` (never ``AUTO``).  A forced
    ``columnar`` raises :class:`KernelUnsupportedError` when any config
    is out of scope; ``auto`` falls back to the reference engine for
    the whole call instead, counting ``analyze.fallback`` (and logging
    the reason) unless ``record`` is false.
    """
    engine = coerce_engine(engine) if engine is not None \
        else _default_engine
    if engine is AnalysisEngine.REFERENCE:
        return AnalysisEngine.REFERENCE
    reasons = [
        reason
        for config in configs
        if (reason := columnar_unsupported(config)) is not None
    ]
    if not reasons:
        return AnalysisEngine.COLUMNAR
    if engine is AnalysisEngine.COLUMNAR:
        raise KernelUnsupportedError(
            f"columnar engine cannot run this configuration: "
            f"{reasons[0]}"
        )
    if record:
        from repro.obs import get_recorder

        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("analyze.fallback", 1)
        log.info(
            "auto engine falling back to reference: %s", reasons[0]
        )
    return AnalysisEngine.REFERENCE


from repro.core.kernel.columns import TraceColumns  # noqa: E402
from repro.core.kernel.engine import (  # noqa: E402
    analyze_columns,
    analyze_columns_many,
)

__all__ = [
    "AnalysisEngine",
    "ENGINE_CHOICES",
    "KernelUnsupportedError",
    "TraceColumns",
    "analyze_columns",
    "analyze_columns_many",
    "coerce_engine",
    "columnar_unsupported",
    "get_default_engine",
    "resolve_engine",
    "set_default_engine",
]
