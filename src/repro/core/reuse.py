"""Instruction reuse analysis (paper ref [16], Sodani & Sohi).

Section 6 of the paper suggests that "the large number of p,p->p and
p,i->p nodes and <p,p> arcs naturally suggest speculation and/or
reuse/memoization of regions with predictable nodes and arcs".  This
module provides the measurement behind that suggestion: a *reuse
buffer* — per static instruction, the last few (input values → output)
tuples — through which the dynamic stream is filtered.  An instruction
instance is **reusable** when an earlier instance of the same static
instruction computed the same inputs, so its result could be looked up
instead of executed.

Only ALU-category instructions participate (a load's output is not a
function of its register inputs; real reuse buffers need memory
invalidation machinery the paper does not discuss).  The tracker also
counts the overlap with full predictability, quantifying how much of
the reuse opportunity the paper's predictable regions already cover.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.isa.opcodes import Category


@dataclass(slots=True)
class ReuseStats:
    """Reuse-buffer measurement results.

    Attributes:
        eligible: dynamic ALU instructions (reuse candidates).
        hits: instances whose inputs matched a buffered entry.
        hits_predicted: reuse hits that were *also* fully predicted
            (under the reference predictor the analyzer pairs this
            tracker with) — the overlap between reuse and prediction.
        predicted_only: fully predicted instances the reuse buffer
            missed (prediction reaches beyond literal recomputation).
    """

    eligible: int = 0
    hits: int = 0
    hits_predicted: int = 0
    predicted_only: int = 0

    def reuse_rate(self) -> float:
        return self.hits / self.eligible if self.eligible else 0.0


class ReuseTracker:
    """A ``ways``-deep reuse buffer per static instruction."""

    def __init__(self, ways: int = 4):
        if ways < 1:
            raise ValueError("ways must be positive")
        self.ways = ways
        self.stats = ReuseStats()
        self._buffers: dict[int, OrderedDict] = {}

    def on_node(self, dyn, fully_predicted: bool) -> bool:
        """Feed one dynamic instruction; returns True on a reuse hit.

        Args:
            dyn: the trace record.
            fully_predicted: whether the reference predictor predicted
                all of this instance's inputs and its output.
        """
        if dyn.category is not Category.ALU or dyn.out is None:
            return False
        stats = self.stats
        stats.eligible += 1
        key = tuple(src.value for src in dyn.srcs)
        buffer = self._buffers.get(dyn.pc)
        if buffer is None:
            buffer = OrderedDict()
            self._buffers[dyn.pc] = buffer
        hit = key in buffer
        if hit:
            buffer.move_to_end(key)
            stats.hits += 1
            if fully_predicted:
                stats.hits_predicted += 1
        else:
            buffer[key] = dyn.out
            if len(buffer) > self.ways:
                buffer.popitem(last=False)
            if fully_predicted:
                stats.predicted_only += 1
        return hit
