"""Export utilities: explicit DPGs and analysis results.

:func:`to_dot` renders a (small) dynamic prediction graph in Graphviz
DOT, colour-coding the paper's behaviours — useful for papers, slides
and debugging the model on snippets like the Fig. 1 loop.
:func:`to_records` flattens a DPG to plain dictionaries for JSON
serialisation or pandas-style analysis.

:func:`result_to_dict` / :func:`result_from_dict` round-trip a full
:class:`~repro.core.stats.AnalysisResult` through plain JSON-safe
dictionaries.  Every count the exhibits consume is an integer, so the
round trip is exact: a deserialised result renders byte-identical
tables.  This is what the runner's disk store
(:mod:`repro.runner.cache`) persists.
"""

from __future__ import annotations

from collections import Counter

from repro.core.events import Behavior, InKind
from repro.core.reuse import ReuseStats
from repro.core.stats import (
    AnalysisResult,
    ArcStats,
    BranchStats,
    NodeStats,
    PathStats,
    PredictorResult,
    SequenceStats,
    TreeStats,
)
from repro.core.unpred import CriticalPoints

#: Fill colours per behaviour (generate/propagate/terminate/...).
_BEHAVIOR_COLORS = {
    Behavior.GENERATE: "palegreen",
    Behavior.PROPAGATE: "lightblue",
    Behavior.TERMINATE: "lightsalmon",
    Behavior.UNPRED: "gainsboro",
    Behavior.OTHER: "white",
    None: "khaki",  # D nodes
}

_EDGE_COLORS = {
    Behavior.GENERATE: "forestgreen",
    Behavior.PROPAGATE: "steelblue",
    Behavior.TERMINATE: "orangered",
    Behavior.UNPRED: "gray",
}


def _node_id(node) -> str:
    if isinstance(node, tuple):  # ("D", key)
        return f"D_{node[1]:x}"
    return f"n{node}"


def _node_label(node, data) -> str:
    if data.get("kind") == "data":
        return f"D@{node[1]:#x}"
    label = data.get("label") or ""
    return f"uid {node}\\npc {data['pc']}: {data['op']}\\n{label}"


def to_dot(graph, title: str = "dynamic prediction graph") -> str:
    """Render an explicit DPG (from :func:`repro.core.build_dpg`) as
    Graphviz DOT text."""
    lines = [
        "digraph dpg {",
        f'  label="{title}";',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontsize=10];',
    ]
    for node, data in graph.nodes(data=True):
        color = _BEHAVIOR_COLORS.get(data.get("behavior"), "white")
        lines.append(
            f'  {_node_id(node)} [label="{_node_label(node, data)}", '
            f'fillcolor={color}];'
        )
    for producer, consumer, data in graph.edges(data=True):
        color = _EDGE_COLORS.get(data.get("behavior"), "black")
        lines.append(
            f"  {_node_id(producer)} -> {_node_id(consumer)} "
            f'[label="{data.get("label", "")}", color={color}, '
            f"fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)


def to_records(graph) -> tuple[list[dict], list[dict]]:
    """Flatten a DPG into (node records, edge records) of plain dicts
    suitable for ``json.dump`` or tabular analysis."""
    nodes = []
    for node, data in graph.nodes(data=True):
        if data.get("kind") == "data":
            nodes.append({"id": _node_id(node), "type": "data",
                          "key": node[1]})
            continue
        behavior = data.get("behavior")
        nodes.append({
            "id": _node_id(node),
            "type": "instruction",
            "uid": node,
            "pc": data["pc"],
            "op": data["op"],
            "out": data.get("out"),
            "out_predicted": data.get("out_predicted"),
            "class": data.get("label"),
            "behavior": behavior.name if behavior is not None else None,
        })
    edges = []
    for producer, consumer, data in graph.edges(data=True):
        edges.append({
            "from": _node_id(producer),
            "to": _node_id(consumer),
            "label": data.get("label"),
            "x": data.get("x"),
            "y": data.get("y"),
            "value": data.get("value"),
            "use": data["use"].name if "use" in data else None,
            "slot": data.get("slot"),
        })
    return nodes, edges


# ----------------------------------------------------------------------
# AnalysisResult <-> JSON-safe dictionaries.
# ----------------------------------------------------------------------

def _counter_to_dict(counter: Counter) -> dict[str, int]:
    # JSON object keys must be strings.  Insertion order is preserved
    # deliberately: exhibit code breaks ranking ties by it (Fig. 9),
    # and byte-identical tables require the round trip to keep it.
    return {str(key): value for key, value in counter.items()}


def _counter_from_dict(payload: dict) -> Counter:
    return Counter({int(key): value for key, value in payload.items()})


def _predictor_to_dict(pred: PredictorResult) -> dict:
    out: dict = {
        "kind": pred.kind,
        "nodes": {
            "class_counts": pred.nodes.class_counts,
            "no_output": pred.nodes.no_output,
        },
        "arcs": {"counts": pred.arcs.counts},
    }
    if pred.paths is not None:
        out["paths"] = {
            "propagate_elements": pred.paths.propagate_elements,
            "class_counts": pred.paths.class_counts,
            "combo_counts": _counter_to_dict(pred.paths.combo_counts),
            "gen_counts": pred.paths.gen_counts,
        }
    if pred.trees is not None:
        out["trees"] = {
            "depth_hist": _counter_to_dict(pred.trees.depth_hist),
            "agg_hist": _counter_to_dict(pred.trees.agg_hist),
            "influence_hist": _counter_to_dict(pred.trees.influence_hist),
            "distance_hist": _counter_to_dict(pred.trees.distance_hist),
            "truncated": pred.trees.truncated,
        }
    if pred.sequences is not None:
        out["sequences"] = {"lengths": _counter_to_dict(pred.sequences.lengths)}
    if pred.branches is not None:
        out["branches"] = {"class_counts": pred.branches.class_counts}
    if pred.unpred is not None:
        out["unpred"] = {"lengths": _counter_to_dict(pred.unpred.lengths)}
    if pred.critical is not None:
        out["critical"] = {
            "n_static": pred.critical.n_static,
            "output_misses": pred.critical.output_misses,
            "terminations": pred.critical.terminations,
        }
    if pred.node_ops is not None:
        out["node_ops"] = [
            [int(kind), int(predicted), op, count]
            for (kind, predicted, op), count in sorted(
                pred.node_ops.items(),
                key=lambda item: (item[0][0], item[0][1], item[0][2]),
            )
        ]
    return out


def _predictor_from_dict(payload: dict) -> PredictorResult:
    pred = PredictorResult(
        kind=payload["kind"],
        nodes=NodeStats(
            class_counts=payload["nodes"]["class_counts"],
            no_output=payload["nodes"]["no_output"],
        ),
        arcs=ArcStats(counts=payload["arcs"]["counts"]),
    )
    paths = payload.get("paths")
    if paths is not None:
        pred.paths = PathStats(
            propagate_elements=paths["propagate_elements"],
            class_counts=paths["class_counts"],
            combo_counts=_counter_from_dict(paths["combo_counts"]),
            gen_counts=paths["gen_counts"],
        )
    trees = payload.get("trees")
    if trees is not None:
        pred.trees = TreeStats(
            depth_hist=_counter_from_dict(trees["depth_hist"]),
            agg_hist=_counter_from_dict(trees["agg_hist"]),
            influence_hist=_counter_from_dict(trees["influence_hist"]),
            distance_hist=_counter_from_dict(trees["distance_hist"]),
            truncated=trees["truncated"],
        )
    sequences = payload.get("sequences")
    if sequences is not None:
        pred.sequences = SequenceStats(
            lengths=_counter_from_dict(sequences["lengths"])
        )
    branches = payload.get("branches")
    if branches is not None:
        pred.branches = BranchStats(class_counts=branches["class_counts"])
    unpred = payload.get("unpred")
    if unpred is not None:
        pred.unpred = SequenceStats(lengths=_counter_from_dict(unpred["lengths"]))
    critical = payload.get("critical")
    if critical is not None:
        pred.critical = CriticalPoints(
            n_static=critical["n_static"],
            output_misses=critical["output_misses"],
            terminations=critical["terminations"],
        )
    node_ops = payload.get("node_ops")
    if node_ops is not None:
        pred.node_ops = Counter({
            (InKind(kind), bool(predicted), op): count
            for kind, predicted, op, count in node_ops
        })
    return pred


def result_to_dict(result: AnalysisResult) -> dict:
    """Flatten an :class:`AnalysisResult` to a JSON-safe dictionary."""
    payload: dict = {
        "name": result.name,
        "nodes": result.nodes,
        "arcs": result.arcs,
        "d_nodes": result.d_nodes,
        "d_arcs": result.d_arcs,
        "static_instructions": result.static_instructions,
        "static_counts": result.static_counts,
        "predictors": {
            kind: _predictor_to_dict(pred)
            for kind, pred in result.predictors.items()
        },
    }
    if result.reuse is not None:
        payload["reuse"] = {
            "eligible": result.reuse.eligible,
            "hits": result.reuse.hits,
            "hits_predicted": result.reuse.hits_predicted,
            "predicted_only": result.reuse.predicted_only,
        }
    return payload


def result_from_dict(payload: dict) -> AnalysisResult:
    """Rebuild an :class:`AnalysisResult` from :func:`result_to_dict`
    output.  Exact inverse: ``result_from_dict(result_to_dict(r)) == r``.
    """
    result = AnalysisResult(
        name=payload["name"],
        nodes=payload["nodes"],
        arcs=payload["arcs"],
        d_nodes=payload["d_nodes"],
        d_arcs=payload["d_arcs"],
        static_instructions=payload["static_instructions"],
        static_counts=payload["static_counts"],
    )
    for kind, pred_payload in payload["predictors"].items():
        result.predictors[kind] = _predictor_from_dict(pred_payload)
    reuse = payload.get("reuse")
    if reuse is not None:
        result.reuse = ReuseStats(
            eligible=reuse["eligible"],
            hits=reuse["hits"],
            hits_predicted=reuse["hits_predicted"],
            predicted_only=reuse["predicted_only"],
        )
    return result
