"""Export utilities for explicit DPGs.

:func:`to_dot` renders a (small) dynamic prediction graph in Graphviz
DOT, colour-coding the paper's behaviours — useful for papers, slides
and debugging the model on snippets like the Fig. 1 loop.
:func:`to_records` flattens a DPG to plain dictionaries for JSON
serialisation or pandas-style analysis.
"""

from __future__ import annotations

from repro.core.events import Behavior

#: Fill colours per behaviour (generate/propagate/terminate/...).
_BEHAVIOR_COLORS = {
    Behavior.GENERATE: "palegreen",
    Behavior.PROPAGATE: "lightblue",
    Behavior.TERMINATE: "lightsalmon",
    Behavior.UNPRED: "gainsboro",
    Behavior.OTHER: "white",
    None: "khaki",  # D nodes
}

_EDGE_COLORS = {
    Behavior.GENERATE: "forestgreen",
    Behavior.PROPAGATE: "steelblue",
    Behavior.TERMINATE: "orangered",
    Behavior.UNPRED: "gray",
}


def _node_id(node) -> str:
    if isinstance(node, tuple):  # ("D", key)
        return f"D_{node[1]:x}"
    return f"n{node}"


def _node_label(node, data) -> str:
    if data.get("kind") == "data":
        return f"D@{node[1]:#x}"
    label = data.get("label") or ""
    return f"uid {node}\\npc {data['pc']}: {data['op']}\\n{label}"


def to_dot(graph, title: str = "dynamic prediction graph") -> str:
    """Render an explicit DPG (from :func:`repro.core.build_dpg`) as
    Graphviz DOT text."""
    lines = [
        "digraph dpg {",
        f'  label="{title}";',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontsize=10];',
    ]
    for node, data in graph.nodes(data=True):
        color = _BEHAVIOR_COLORS.get(data.get("behavior"), "white")
        lines.append(
            f'  {_node_id(node)} [label="{_node_label(node, data)}", '
            f'fillcolor={color}];'
        )
    for producer, consumer, data in graph.edges(data=True):
        color = _EDGE_COLORS.get(data.get("behavior"), "black")
        lines.append(
            f"  {_node_id(producer)} -> {_node_id(consumer)} "
            f'[label="{data.get("label", "")}", color={color}, '
            f"fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)


def to_records(graph) -> tuple[list[dict], list[dict]]:
    """Flatten a DPG into (node records, edge records) of plain dicts
    suitable for ``json.dump`` or tabular analysis."""
    nodes = []
    for node, data in graph.nodes(data=True):
        if data.get("kind") == "data":
            nodes.append({"id": _node_id(node), "type": "data",
                          "key": node[1]})
            continue
        behavior = data.get("behavior")
        nodes.append({
            "id": _node_id(node),
            "type": "instruction",
            "uid": node,
            "pc": data["pc"],
            "op": data["op"],
            "out": data.get("out"),
            "out_predicted": data.get("out_predicted"),
            "class": data.get("label"),
            "behavior": behavior.name if behavior is not None else None,
        })
    edges = []
    for producer, consumer, data in graph.edges(data=True):
        edges.append({
            "from": _node_id(producer),
            "to": _node_id(consumer),
            "label": data.get("label"),
            "x": data.get("x"),
            "y": data.get("y"),
            "value": data.get("value"),
            "use": data["use"].name if "use" in data else None,
            "slot": data.get("slot"),
        })
    return nodes, edges
