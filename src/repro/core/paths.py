"""Predictable-path and predictability-tree analysis (paper §4.5).

A *predictable path* begins at a generate node or arc and contains only
propagate nodes and arcs.  As the trace streams by, every predictable
value carries the set of generator **classes** upstream of it (a 6-bit
mask over C/D/W/I/N/M) and — when tree tracking is enabled — a capped
set of generator *ids* plus the longest distance (in propagate
elements) back to any of them.

Per propagate element (node or arc) the tracker records:

* which generator classes influence it (Fig. 9, top: counted once per
  class) and the exact class combination (Fig. 9, bottom: counted once);
* how many distinct generates influence it (Fig. 11, top);
* the distance to the farthest influencing generate (Fig. 11, bottom).

Per generate it records the deepest propagate element in its tree and
the total number of propagate elements belonging to the tree (Fig. 10:
"trees" and "aggregate propagation" curves).

Distances count both nodes and arcs as path elements, matching the
figure axes ("Longest Path Length (Nodes, Arcs)").
"""

from __future__ import annotations

from repro.core.events import GenClass, InKind
from repro.core.stats import PathStats, TreeStats

#: mask -> tuple of class indices set in the mask (6-bit masks).
_MASK_BITS = tuple(
    tuple(bit for bit in range(6) if mask & (1 << bit)) for mask in range(64)
)

#: Node input-kind -> generator class when the node generates.
NODE_GEN_CLASS = {
    InKind.II: GenClass.I,
    InKind.NN: GenClass.N,
    InKind.IN: GenClass.M,
}

_EMPTY_SET: frozenset = frozenset()


class PathTracker:
    """Streams generator influence along one predictor's DPG.

    Args:
        track_trees: also track per-generate ids, depths and distances
            (the expensive part; the paper only shows these for the
            context predictor).
        gen_cap: maximum generator ids carried per value; unions beyond
            the cap are truncated and counted in ``TreeStats.truncated``.
    """

    def __init__(self, track_trees: bool = False, gen_cap: int = 64):
        self.stats = PathStats()
        self.trees = TreeStats() if track_trees else None
        self.gen_cap = gen_cap
        self._track_trees = track_trees
        #: uid-indexed influence of each value (0 = not predictable).
        self._masks: list[int] = []
        self._sets: list[frozenset] = [] if track_trees else None
        self._dists: list[int] = [] if track_trees else None
        #: gid -> [max depth, propagate-element count].
        self._gens: list[list[int]] = [] if track_trees else None
        # Current-node accumulators.
        self._cur_mask = 0
        self._cur_set: frozenset = _EMPTY_SET
        self._cur_dist = -1

    # ------------------------------------------------------------------
    # Per-node protocol: begin -> feed each predicted input -> end.
    # ------------------------------------------------------------------

    def begin_node(self) -> None:
        self._cur_mask = 0
        self._cur_set = _EMPTY_SET
        self._cur_dist = -1

    def feed_propagate_arc(self, producer_uid: int) -> None:
        """A ``<p,p>`` in-arc: itself a propagate element."""
        mask = self._masks[producer_uid]
        if not mask:
            # Defensive: a predicted producer always stored a non-empty
            # influence; an empty one means the caller fed a node the
            # tracker never saw, so contribute nothing.
            return
        if self._track_trees:
            gen_set = self._sets[producer_uid]
            dist = self._dists[producer_uid] + 1
            self._count_propagate(mask, gen_set, dist)
            self._merge(mask, gen_set, dist)
        else:
            self._count_propagate(mask, _EMPTY_SET, 0)
            self._cur_mask |= mask

    def feed_generate_arc(self, gen_class: GenClass) -> None:
        """An ``<n,p>`` in-arc: a generate element, distance 0."""
        self.stats.gen_counts[gen_class] += 1
        mask = 1 << gen_class
        if self._track_trees:
            gen_set = frozenset((self._new_gen(),))
            self._merge(mask, gen_set, 0)
        else:
            self._cur_mask |= mask

    def end_node(self, out_predicted: bool, kind: InKind) -> None:
        """Finish the node, storing its output value's influence.

        Must be called exactly once per dynamic instruction, in uid
        order, so that producer uids index the influence lists.
        """
        if not out_predicted:
            self._store(0, _EMPTY_SET, 0)
            return
        mask = self._cur_mask
        if mask:  # propagate node: at least one predicted input fed in
            dist = self._cur_dist + 1
            self._count_propagate(mask, self._cur_set, dist)
            self._store(mask, self._cur_set, dist)
            return
        # Generate node (no predicted inputs, predicted output).
        gen_class = NODE_GEN_CLASS.get(kind)
        if gen_class is None:
            # A p-kind node whose predicted inputs were all fed as
            # unpredicted cannot occur; be safe for exotic callers.
            self._store(0, _EMPTY_SET, 0)
            return
        self.stats.gen_counts[gen_class] += 1
        if self._track_trees:
            gen_set = frozenset((self._new_gen(),))
        else:
            gen_set = _EMPTY_SET
        self._store(1 << gen_class, gen_set, 0)

    def skip_node(self) -> None:
        """Account a node with no predictable output."""
        self._store(0, _EMPTY_SET, 0)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _new_gen(self) -> int:
        gens = self._gens
        gens.append([0, 0])
        return len(gens) - 1

    def _merge(self, mask: int, gen_set: frozenset, dist: int) -> None:
        self._cur_mask |= mask
        if gen_set:
            if self._cur_set:
                merged = self._cur_set | gen_set
                if len(merged) > self.gen_cap:
                    merged = frozenset(
                        sorted(merged)[: self.gen_cap]
                    )
                    self.trees.truncated += 1
                self._cur_set = merged
            else:
                self._cur_set = gen_set
        if dist > self._cur_dist:
            self._cur_dist = dist

    def _store(self, mask: int, gen_set: frozenset, dist: int) -> None:
        self._masks.append(mask)
        if self._track_trees:
            self._sets.append(gen_set)
            self._dists.append(dist)

    def _count_propagate(self, mask: int, gen_set: frozenset, dist: int) -> None:
        stats = self.stats
        stats.propagate_elements += 1
        class_counts = stats.class_counts
        for bit in _MASK_BITS[mask]:
            class_counts[bit] += 1
        stats.combo_counts[mask] += 1
        if self._track_trees:
            trees = self.trees
            trees.influence_hist[len(gen_set)] += 1
            trees.distance_hist[dist] += 1
            gens = self._gens
            for gid in gen_set:
                record = gens[gid]
                if dist > record[0]:
                    record[0] = dist
                record[1] += 1

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Fold per-generate records into the tree histograms."""
        if not self._track_trees:
            return
        trees = self.trees
        for depth, count in self._gens:
            trees.depth_hist[depth] += 1
            trees.agg_hist[depth] += count
