"""Result containers for the predictability analysis.

Counts are kept raw (per class / per length / per distance); the
reporting layer (:mod:`repro.report`) turns them into the percentage
tables and cumulative curves the paper's figures show.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.events import (
    ARC_LABELS,
    Behavior,
    GEN_CLASS_NAMES,
    IN_KIND_NAMES,
    InKind,
    USE_NAMES,
    UseClass,
    node_behavior,
)


@dataclass(slots=True)
class NodeStats:
    """Node classification counts for one predictor.

    ``class_counts[kind][out]`` counts nodes with input kind ``kind``
    (an :class:`InKind` value) and output predicted (``out=1``) or not
    (``out=0``).  ``no_output`` counts nodes the model cannot classify
    (direct jumps, nops, syscalls) — they still count as DPG nodes.
    """

    class_counts: list = field(
        default_factory=lambda: [[0, 0] for _ in range(6)]
    )
    no_output: int = 0

    def add(self, kind: InKind, out_predicted: bool) -> None:
        self.class_counts[kind][1 if out_predicted else 0] += 1

    def count(self, kind: InKind, out_predicted: bool) -> int:
        return self.class_counts[kind][1 if out_predicted else 0]

    def classified(self) -> int:
        """Nodes with a predictable output (sum over all classes)."""
        return sum(sum(pair) for pair in self.class_counts)

    def total(self) -> int:
        return self.classified() + self.no_output

    def behavior_counts(self) -> dict[Behavior, int]:
        """Aggregate counts per behaviour (generate/propagate/...)."""
        totals: Counter = Counter()
        for kind in InKind:
            for out in (False, True):
                totals[node_behavior(kind, out)] += self.count(kind, out)
        totals[Behavior.OTHER] += self.no_output
        return dict(totals)

    def by_class_name(self) -> dict[str, int]:
        """Counts keyed by human-readable class names (``"i,i->p"``)."""
        return {
            f"{IN_KIND_NAMES[kind]}->{'p' if out else 'n'}": self.count(
                kind, out
            )
            for kind in InKind
            for out in (True, False)
        }


@dataclass(slots=True)
class ArcStats:
    """Arc classification counts for one predictor.

    ``counts[use][xy]`` counts arcs of use class ``use`` (an
    :class:`UseClass` value) with ``<x,y>`` label code ``xy``.
    """

    counts: list = field(
        default_factory=lambda: [[0, 0, 0, 0] for _ in range(4)]
    )

    def add(self, use: UseClass, xy: int, count: int = 1) -> None:
        self.counts[use][xy] += count

    def count(self, use: UseClass, xy: int) -> int:
        return self.counts[use][xy]

    def total(self) -> int:
        return sum(sum(row) for row in self.counts)

    def xy_total(self, xy: int) -> int:
        return sum(row[xy] for row in self.counts)

    def behavior_counts(self) -> dict[Behavior, int]:
        from repro.core.events import ARC_BEHAVIOR

        totals: Counter = Counter()
        for xy in range(4):
            totals[ARC_BEHAVIOR[xy]] += self.xy_total(xy)
        return dict(totals)

    def by_class_name(self) -> dict[str, int]:
        """Counts keyed by names like ``"<r:n,p>"``."""
        return {
            f"<{USE_NAMES[use]}:{ARC_LABELS[xy][1:-1]}>": self.counts[use][xy]
            for use in UseClass
            for xy in range(4)
        }


@dataclass(slots=True)
class PathStats:
    """Path-analysis accumulators for one predictor (paper Fig. 9).

    ``class_counts[c]`` counts propagate elements (nodes and arcs) on
    predictable paths beginning at a generator of class ``c`` — an
    element influenced by several classes counts once per class.
    ``combo_counts[mask]`` counts each element exactly once, keyed by
    the exact set (bitmask) of generator classes influencing it.
    """

    propagate_elements: int = 0
    class_counts: list = field(default_factory=lambda: [0] * 6)
    combo_counts: Counter = field(default_factory=Counter)
    gen_counts: list = field(default_factory=lambda: [0] * 6)

    def by_class_name(self) -> dict[str, int]:
        return dict(zip(GEN_CLASS_NAMES, self.class_counts))

    def total_generates(self) -> int:
        return sum(self.gen_counts)


@dataclass(slots=True)
class TreeStats:
    """Per-generate tree statistics (paper Figs. 10 and 11).

    ``depth_hist[d]`` counts generates whose tree's longest path
    contains ``d`` propagate elements; ``agg_hist[d]`` sums those
    trees' total propagate-element counts.  ``influence_hist[k]``
    counts propagate elements influenced by ``k`` distinct generates;
    ``distance_hist[d]`` counts propagate elements whose farthest
    influencing generate is ``d`` elements away.  ``truncated`` counts
    elements whose generate set hit the configured cap (their influence
    histograms undercount; see DESIGN.md).
    """

    depth_hist: Counter = field(default_factory=Counter)
    agg_hist: Counter = field(default_factory=Counter)
    influence_hist: Counter = field(default_factory=Counter)
    distance_hist: Counter = field(default_factory=Counter)
    truncated: int = 0

    def total_generates(self) -> int:
        return sum(self.depth_hist.values())

    def total_propagates(self) -> int:
        return sum(self.influence_hist.values())

    def aggregate_propagation(self) -> int:
        return sum(self.agg_hist.values())


@dataclass(slots=True)
class SequenceStats:
    """Contiguous fully-predictable sequence lengths (paper Fig. 12).

    ``lengths[n]`` counts maximal runs of exactly ``n`` consecutive
    dynamic instructions whose inputs and outputs were all predicted
    correctly.
    """

    lengths: Counter = field(default_factory=Counter)

    def add_run(self, length: int) -> None:
        if length > 0:
            self.lengths[length] += 1

    def instructions_in_runs(self) -> int:
        return sum(length * count for length, count in self.lengths.items())


@dataclass(slots=True)
class BranchStats:
    """Branch-node classification (paper Fig. 13): value-predicted
    inputs crossed with the gshare direction outcome."""

    class_counts: list = field(
        default_factory=lambda: [[0, 0] for _ in range(6)]
    )

    def add(self, kind: InKind, predicted: bool) -> None:
        self.class_counts[kind][1 if predicted else 0] += 1

    def count(self, kind: InKind, predicted: bool) -> int:
        return self.class_counts[kind][1 if predicted else 0]

    def total(self) -> int:
        return sum(sum(pair) for pair in self.class_counts)

    def correct(self) -> int:
        return sum(pair[1] for pair in self.class_counts)

    def accuracy(self) -> float:
        total = self.total()
        return self.correct() / total if total else 0.0


@dataclass(slots=True)
class PredictorResult:
    """All per-predictor results for one workload run."""

    kind: str
    nodes: NodeStats = field(default_factory=NodeStats)
    arcs: ArcStats = field(default_factory=ArcStats)
    paths: PathStats | None = None
    trees: TreeStats | None = None
    sequences: SequenceStats | None = None
    branches: BranchStats | None = None
    #: fully-mispredicted run lengths (Section 6 unpredictability view)
    unpred: SequenceStats | None = None
    #: per-PC termination attribution ("critical points")
    critical: object | None = None
    #: (InKind, out_predicted, opcode) -> count, for opcode attribution
    node_ops: Counter | None = None

    def ops_for_class(self, kind: InKind, out_predicted: bool) -> Counter:
        """Opcode counts of one node class (empty when not tracked)."""
        out: Counter = Counter()
        if self.node_ops is not None:
            for (node_kind, predicted, op), count in self.node_ops.items():
                if node_kind == kind and predicted == out_predicted:
                    out[op] += count
        return out


@dataclass(slots=True)
class AnalysisResult:
    """Full result of analysing one workload trace.

    Attributes:
        name: workload name.
        nodes: dynamic instruction count (DPG nodes, excluding D nodes).
        arcs: total dependence arcs (DPG edges).
        d_nodes: distinct D (input-data) nodes consumed.
        d_arcs: arcs whose producer is a D node.
        static_instructions: program size in static instructions.
        predictors: per-predictor results keyed by predictor kind.
    """

    name: str
    nodes: int = 0
    arcs: int = 0
    d_nodes: int = 0
    d_arcs: int = 0
    static_instructions: int = 0
    predictors: dict[str, PredictorResult] = field(default_factory=dict)
    #: per-PC execution counts over the analysed trace
    static_counts: list = field(default_factory=list, repr=False)
    #: instruction reuse measurement (when enabled); a
    #: :class:`repro.core.reuse.ReuseStats`
    reuse: object | None = None
    #: observability snapshot attached by an observing runner's
    #: ``run_one`` (see :mod:`repro.obs`); not part of the stored
    #: payload — a cached result gets the profile of the run that
    #: served it, not the one that computed it
    profile: dict | None = field(default=None, repr=False, compare=False)

    @property
    def elements(self) -> int:
        """Total nodes + arcs, the paper's percentage denominator."""
        return self.nodes + self.arcs

    def edge_node_ratio(self) -> float:
        return self.arcs / self.nodes if self.nodes else 0.0
