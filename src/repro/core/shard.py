"""Segment-parallel analysis of a single trace.

The columnar engine (:mod:`repro.core.kernel.engine`) analyzes one
trace on one core.  This module splits the record stream into
contiguous **segments** at checkpointed boundaries and runs the
kernel's batched passes per segment — in-process threads for traces
already decoded in memory, the runner's :class:`TaskPool` for big
stored traces — then merges the per-segment partials into an
:class:`~repro.core.stats.AnalysisResult` **byte-identical** to the
serial engine's (enforced by tests/core/test_shard.py, the extended
kernel-parity suite, and the ``segments>1`` fuzz).

What a boundary must carry
--------------------------
Predictors are stateful, so segment ``i`` cannot replay its slice from
scratch.  A :class:`SegmentIndex` checkpoint at record ``r`` carries:

* sparse **state deltas** for every predictor stream (per-bank input
  and output value predictors plus the shared branch predictor) as
  written by :mod:`repro.core.kernel.state` — folding deltas
  ``0..i-1`` reconstructs each table exactly;
* the **arc index** at ``r`` (which also yields the v2 byte offset:
  the record layout is fixed-width, ``23*r + 25*arcs``);
* cumulative **per-PC execution counts** before ``r``, so the
  count-so-far write-once classification resumes mid-stream.

Producer state needs no snapshot: the v2 format stores producers as
absolute uids, so a segment's arc group keys are correct as decoded,
and the one cross-segment read — arc predictability ``X``, the
producer's output byte — is returned as a patch list the merge applies
once the producer's segment has landed.

Why the merge is exact
----------------------
Node/branch/arc class counts are fixed-size additive tallies.  The
order-sensitive exports (run lengths, path combo counts, tree
histograms) are never merged as Counters: selectors are concatenated
and split once, and the generator-influence walk itself is resumed
across segments (:class:`_ResumableWalk`), so every Counter is built
in exactly the serial insertion order.  See docs/sharding.md.
"""

from __future__ import annotations

import pickle
from bisect import bisect_left
from collections import Counter
from itertools import compress, count

from repro.core.arcs import ArcGroupTable
from repro.core.events import InKind
from repro.core.kernel.columns import TraceColumns
from repro.core.kernel.engine import (
    _BRANCH_T,
    _MISS_T,
    _NODE_GC,
    _NODE_T,
    _NO_OUTPUT,
    _SEQ_T,
    _TERM_T,
    _UNPRED_T,
    _comp_base,
    _ones,
    _run_lengths,
)
from repro.core.kernel.state import (
    fold_deltas,
    new_branch_state,
    new_touched,
    run_branch_slice,
    run_value_slice,
    snapshot_delta,
    value_state_for,
)
from repro.core.paths import _EMPTY_SET, _MASK_BITS
from repro.core.stats import (
    AnalysisResult,
    BranchStats,
    NodeStats,
    PathStats,
    PredictorResult,
    TreeStats,
)
from repro.core.unpred import CriticalPoints
from repro.errors import ReproError
from repro.obs import get_recorder

#: v2 fixed record layout: head bytes + bytes per source (see
#: repro.cpu.tracefile).  Byte offset of record r with a arcs before
#: it is exactly _REC_BYTES*r + _SRC_BYTES*a.
_REC_BYTES = 23
_SRC_BYTES = 25

SEGIDX_VERSION = 1
SEGIDX_MAGIC = b"RPRSIDX1"


class ShardError(ReproError):
    """Segment-parallel analysis could not run or a segment failed."""


# ======================================================================
# Segment index (checkpoints).
# ======================================================================

class SegmentIndex:
    """Checkpoints every N records of one trace (see module doc).

    ``bounds[t]`` is the record index of boundary ``t`` (``bounds[0]``
    is 0, ``bounds[-1]`` is ``n_records``); ``arc_bounds[t]`` the arc
    count before it.  ``deltas[t]`` holds the state written by segment
    ``t`` (records ``bounds[t]:bounds[t+1]``) keyed ``{"in": {spec:
    delta}, "out": {spec: delta}, "br": delta}``; the last segment
    needs no delta.  ``counts[t]`` is the sparse per-PC record tally of
    segment ``t``.
    """

    __slots__ = ("n_records", "n_static", "specs", "branch", "bounds",
                 "arc_bounds", "counts", "deltas")

    def __init__(self, n_records, n_static, specs, branch, bounds,
                 arc_bounds, counts, deltas):
        self.n_records = n_records
        self.n_static = n_static
        self.specs = tuple(specs)
        self.branch = tuple(branch)
        self.bounds = list(bounds)
        self.arc_bounds = list(arc_bounds)
        self.counts = counts
        self.deltas = deltas

    # -- compatibility -------------------------------------------------

    def supports(self, config) -> str | None:
        """Why this index cannot serve ``config`` (None = it can)."""
        missing = set(config.predictors) - set(self.specs)
        if missing:
            return (f"predictor {sorted(missing)[0]!r} not in the "
                    f"index's checkpoint family")
        kind = config.branch_predictor
        if kind != self.branch[0]:
            return (f"branch predictor {kind!r} != indexed "
                    f"{self.branch[0]!r}")
        if kind == "gshare" and config.gshare_bits != self.branch[1]:
            return (f"gshare_bits {config.gshare_bits} != indexed "
                    f"{self.branch[1]}")
        return None

    # -- resume inputs -------------------------------------------------

    def counts_at(self, t: int) -> list:
        """Dense per-PC counts of records before boundary ``t``."""
        dense = [0] * self.n_static
        for part in self.counts[:t]:
            for pc, n in part.items():
                dense[pc] += n
        return dense

    def states_at(self, t: int, specs, br_kind, br_bits) -> dict:
        """Folded predictor states at boundary ``t`` for ``specs``."""
        states = {
            "in": {spec: value_state_for(spec) for spec in specs},
            "out": {spec: value_state_for(spec) for spec in specs},
            "br": new_branch_state(br_kind),
        }
        for delta in self.deltas[:t]:
            for spec in specs:
                fold_deltas(states["in"][spec], (delta["in"][spec],))
                fold_deltas(states["out"][spec], (delta["out"][spec],))
            fold_deltas(states["br"], (delta["br"],))
        return states

    # -- serialization (the .segidx sidecar) ---------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "n_records": self.n_records, "n_static": self.n_static,
            "specs": self.specs, "branch": self.branch,
            "bounds": self.bounds, "arc_bounds": self.arc_bounds,
            "counts": self.counts, "deltas": self.deltas,
        }
        return (SEGIDX_MAGIC + bytes([SEGIDX_VERSION])
                + pickle.dumps(payload, protocol=4))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SegmentIndex":
        if raw[:8] != SEGIDX_MAGIC:
            raise ShardError("not a segment index (bad magic)")
        if raw[8] != SEGIDX_VERSION:
            raise ShardError(
                f"unsupported segment index version {raw[8]}")
        payload = pickle.loads(raw[9:])
        return cls(payload["n_records"], payload["n_static"],
                   payload["specs"], payload["branch"],
                   payload["bounds"], payload["arc_bounds"],
                   payload["counts"], payload["deltas"])


def default_family(config=None) -> tuple[tuple, tuple]:
    """The (specs, branch) checkpoint family for an index.

    ``None`` means the capture-time default: every default predictor
    spec plus the default branch predictor, so any default-config
    analysis can resume from a stored sidecar.
    """
    from repro.core.analysis import AnalysisConfig

    config = config if config is not None else AnalysisConfig()
    return (tuple(config.predictors),
            (config.branch_predictor, config.gshare_bits))


def plan_bounds(m: int, segments: int) -> list[int]:
    """Near-equal record bounds: ``[0, ..., m]``, each segment >= 1
    record (so ``segments > m`` degrades to 1-record segments)."""
    k = max(1, min(segments, m))
    return [i * m // k for i in range(k + 1)]


def build_index(columns, bounds, specs=None, branch=None) -> SegmentIndex:
    """Build checkpoints for ``columns`` at ``bounds``.

    Runs every predictor stream once through the resumable passes of
    :mod:`repro.core.kernel.state`, snapshotting each segment's state
    delta and per-PC record tally at the boundary.  Used both by the
    in-memory segmented path (per-call, for the exact config) and by
    capture/reindex (default family, persisted as the sidecar).
    """
    if specs is None or branch is None:
        d_specs, d_branch = default_family()
        specs = d_specs if specs is None else tuple(specs)
        branch = d_branch if branch is None else tuple(branch)
    else:
        specs = tuple(specs)
        branch = tuple(branch)
    br_kind, br_bits = branch
    m = bounds[-1]
    starts = columns.src_start
    arc_bounds = [starts[r] for r in bounds]
    ov_idx = columns.ov_idx
    br_idx = columns.br_idx
    ov_bounds = [bisect_left(ov_idx, r) for r in bounds]
    br_bounds = [bisect_left(br_idx, r) for r in bounds]
    in_states = {spec: value_state_for(spec) for spec in specs}
    out_states = {spec: value_state_for(spec) for spec in specs}
    br_state = new_branch_state(br_kind)
    sink = bytearray()
    counts: list[dict] = []
    deltas: list[dict] = []
    pcs = columns.pc
    for t in range(len(bounds) - 1):
        r0, r1 = bounds[t], bounds[t + 1]
        a0, a1 = arc_bounds[t], arc_bounds[t + 1]
        o0, o1 = ov_bounds[t], ov_bounds[t + 1]
        b0, b1 = br_bounds[t], br_bounds[t + 1]
        counts.append(dict(Counter(pcs[r0:r1])))
        if t == len(bounds) - 2:
            break  # the last segment's delta is never resumed from
        delta = {"in": {}, "out": {}, "br": None}
        for spec in specs:
            touched = new_touched(in_states[spec])
            run_value_slice(spec, in_states[spec],
                            columns.in_key[a0:a1],
                            columns.src_value[a0:a1], sink, touched)
            delta["in"][spec] = snapshot_delta(in_states[spec], touched)
            touched = new_touched(out_states[spec])
            run_value_slice(spec, out_states[spec],
                            columns.ov_pc[o0:o1],
                            columns.ov_val[o0:o1], sink, touched)
            delta["out"][spec] = snapshot_delta(out_states[spec],
                                                touched)
        touched = new_touched(br_state)
        run_branch_slice(br_kind, br_bits, br_state,
                         columns.br_pc[b0:b1],
                         columns.br_taken[b0:b1], sink, touched)
        delta["br"] = snapshot_delta(br_state, touched)
        deltas.append(delta)
        sink.clear()
    return SegmentIndex(m, columns.n_static, specs, branch, bounds,
                        arc_bounds, counts, deltas)


def select_segments(index: SegmentIndex, m: int, segments: int) -> list:
    """Choose up to ``segments`` cut points from an index for a budget
    of ``m`` records.

    Returns ``[(r0, r1, arc0, t0), ...]`` where ``t0`` is the index
    boundary position of ``r0`` (states/counts are resumed from
    ``t0``).  Fewer segments come back when the index has too few
    usable boundaries below ``m``; one segment means "run serial".
    """
    bounds = index.bounds
    cands = [t for t in range(1, len(bounds) - 1) if 0 < bounds[t] < m]
    k = max(1, min(segments, m))
    picked: set[int] = set()
    for j in range(1, k):
        ideal = j * m / k
        best = None
        best_d = None
        for t in cands:
            if t in picked:
                continue
            d = abs(bounds[t] - ideal)
            if best_d is None or d < best_d:
                best, best_d = t, d
        if best is not None:
            picked.add(best)
    cuts = sorted(picked)
    edges = [(0, 0, 0)] + [(bounds[t], index.arc_bounds[t], t)
                           for t in cuts]
    out = []
    for i, (r0, arc0, t0) in enumerate(edges):
        r1 = edges[i + 1][0] if i + 1 < len(edges) else m
        out.append((r0, r1, arc0, t0))
    return out


# ======================================================================
# Per-segment compute (runs in a worker process, a thread, or inline).
# ======================================================================

def _slice_columns(columns, r0: int, r1: int) -> TraceColumns:
    """A local TraceColumns over records ``[r0, r1)`` of ``columns``.

    Record/arc indexing is rebased to zero; producer uids and group
    keys stay absolute (they are stored absolute).  Derived flag
    columns and record subsets are recomputed by ``_finish`` on the
    slice — the same code path the full decode uses.
    """
    starts = columns.src_start
    a0, a1 = starts[r0], starts[r1]
    d0, d1 = columns.d_prefix[r0], columns.d_prefix[r1]
    seg = TraceColumns()
    seg.n_static = columns.n_static
    seg.ops = columns.ops
    seg.pc = columns.pc[r0:r1]
    seg.op_index = columns.op_index[r0:r1]
    seg.out = columns.out[r0:r1]
    seg.passthrough = columns.passthrough[r0:r1]
    seg.taken = columns.taken[r0:r1]
    seg.nsrc = columns.nsrc[r0:r1]
    seg.src_start = [s - a0 for s in starts[r0:r1 + 1]]
    seg.src_value = columns.src_value[a0:a1]
    seg.src_prod = columns.src_prod[a0:a1]
    seg.src_ppc = columns.src_ppc[a0:a1]
    seg.src_mem = columns.src_mem[a0:a1]
    seg.src_loc = columns.src_loc[a0:a1]
    seg.in_key = columns.in_key[a0:a1]
    seg.group_key = columns.group_key[a0:a1]
    seg.d_prefix = [d - d0 for d in columns.d_prefix[r0:r1 + 1]]
    seg.d_ids = columns.d_ids[d0:d1]
    seg.n_records = r1 - r0
    seg._finish()
    return seg


def _genclass_resumed(cols, counts_start) -> bytearray:
    """Count-so-far GenClass codes for a segment, seeded with the
    per-PC counts accumulated before it (mirrors
    ``TraceColumns.genclass_so_far`` restricted to the slice)."""
    counts = list(counts_start)
    out = bytearray(cols.src_start[-1])
    pcs = cols.pc
    starts = cols.src_start
    prods = cols.src_prod
    ppcs = cols.src_ppc
    for r in range(cols.n_records):
        counts[pcs[r]] += 1
        for a in range(starts[r], starts[r + 1]):
            if prods[a] < 0:
                out[a] = 1                      # GenClass.D
            elif counts[ppcs[a]] == 1:
                out[a] = 2                      # GenClass.W
    return out


def compute_segment(cols, r0: int, states: dict, counts_start, config,
                    profile_counts=None) -> dict:
    """Analyse one segment's local columns into a mergeable payload.

    ``cols`` is a *local* TraceColumns (record 0 = global ``r0``);
    ``states`` the folded predictor states at ``r0``.  The payload
    mirrors everything ``analyze_columns`` derives per element, plus
    the ``x_patches`` list for arcs whose producer lives in an earlier
    segment (their X bit is unknowable locally).
    """
    cfg = config
    m = cols.n_records
    A = cols.src_start[-1]
    specs = cfg.predictors
    nk = len(specs)
    full_mask = (1 << nk) - 1
    br_kind = cfg.branch_predictor
    br_bits = cfg.gshare_bits

    # --- resumed predictor passes ------------------------------------
    in_hits = []
    for spec in specs:
        hits = bytearray()
        run_value_slice(spec, states["in"][spec], cols.in_key,
                        cols.src_value, hits)
        in_hits.append(hits)
    ov_cnt = len(cols.ov_idx)
    out_hits = []
    for spec in specs:
        hits = bytearray()
        run_value_slice(spec, states["out"][spec], cols.ov_pc,
                        cols.ov_val, hits)
        out_hits.append(hits)
    br_cnt = len(cols.br_idx)
    br_hits = bytearray()
    run_branch_slice(br_kind, br_bits, states["br"], cols.br_pc,
                     cols.br_taken, br_hits)

    # --- derived bit columns (mirrors engine._derived, local) --------
    y_int = 0
    for k in range(nk):
        y_int |= int.from_bytes(in_hits[k], "little") << k
    yb = y_int.to_bytes(A, "little")
    out = bytearray(m)
    if br_cnt and full_mask:
        for i, hit in zip(cols.br_idx, br_hits):
            if hit:
                out[i] = full_mask
    if ov_cnt and nk:
        o_int = 0
        for k in range(nk):
            o_int |= int.from_bytes(out_hits[k], "little") << k
        for i, value in zip(cols.ov_idx,
                            o_int.to_bytes(ov_cnt, "little")):
            if value:
                out[i] = value
    for i, arc in zip(cols.pt_idx, cols.pt_arc):
        value = yb[arc]
        if value:
            out[i] = value
    union = bytearray(m)
    inter = bytearray(m)
    starts = cols.src_start
    a = 0
    for r in range(m):
        b = starts[r + 1]
        if b == a:
            inter[r] = full_mask
        else:
            u = yb[a]
            i_ = u
            for j in range(a + 1, b):
                v = yb[j]
                u |= v
                i_ &= v
            union[r] = u
            inter[r] = i_
        a = b
    # Per-arc X: the producer's O byte.  Producers inside the segment
    # resolve locally; earlier producers become patches the merge
    # applies once their segment's O column has landed.
    x = bytearray(A)
    x_patches = []
    prods = cols.src_prod
    for j in range(A):
        p = prods[j]
        if p >= r0:
            x[j] = out[p - r0]
        elif p >= 0:
            x_patches.append((j, p))

    # --- composite classification per bank ---------------------------
    out_v = int.from_bytes(out, "little")
    union_v = int.from_bytes(union, "little")
    inter_v = int.from_bytes(inter, "little")
    y_v = y_int
    x_v = int.from_bytes(x, "little")
    ones_m = _ones(m)
    ones_a = _ones(A)
    base_v = int.from_bytes(_comp_base(cols, m), "little")
    gcol = (
        _genclass_resumed(cols, counts_start) if profile_counts is None
        else cols.genclass_profiled(profile_counts)
    )
    op_col = cols.op_index
    pcs = cols.pc

    banks = []
    for k in range(nk):
        hp = (union_v >> k) & ones_m
        hn = ((inter_v >> k) & ones_m) ^ ones_m
        op = (out_v >> k) & ones_m
        comp = (base_v | hp | (hn << 1) | (op << 3)).to_bytes(
            m, "little")
        node_codes = comp.translate(_NODE_T)
        bank = {
            "node": Counter(node_codes),
            "ybk": ((y_v >> k) & ones_a).to_bytes(A, "little"),
            "xbk": bytearray(
                ((x_v >> k) & ones_a).to_bytes(A, "little")),
        }
        if cfg.track_paths:
            bank["codes"] = node_codes
        if cfg.track_ops:
            bank["ops"] = Counter(zip(node_codes, bytes(op_col)))
        if cfg.track_branches:
            bank["branch"] = Counter(comp.translate(_BRANCH_T))
        if cfg.track_sequences:
            bank["seq"] = comp.translate(_SEQ_T)
        if cfg.track_unpred:
            bank["unpred"] = comp.translate(_UNPRED_T)
        if cfg.track_critical:
            bank["miss"] = Counter(
                compress(pcs, comp.translate(_MISS_T)))
            bank["term"] = Counter(
                compress(pcs, comp.translate(_TERM_T)))
        banks.append(bank)

    return {
        "r0": r0,
        "n": m,
        "A": A,
        "starts": starts,
        "prods": prods,
        "out": bytes(out),
        "x_patches": x_patches,
        "gcol": gcol,
        "pc_counts": Counter(pcs),
        "d_ids": set(cols.d_ids),
        "d_arcs": len(cols.d_ids),
        "group_key": cols.group_key,
        "banks": banks,
    }


# ======================================================================
# The resumable generator-influence walk (engine._paths_pass, split at
# segment boundaries: masks/sets/distances index records globally and
# survive across feed() calls).
# ======================================================================

class _ResumableWalk:
    __slots__ = ("track_trees", "gen_cap", "gen_counts", "counted",
                 "masks", "sets_", "dists", "gens", "inf_list",
                 "dist_list", "truncated")

    def __init__(self, track_trees: bool, gen_cap: int):
        self.track_trees = track_trees
        self.gen_cap = gen_cap
        self.gen_counts = [0] * 6
        self.counted = []
        self.masks = []
        self.truncated = 0
        if track_trees:
            self.sets_ = []
            self.dists = []
            self.gens = []
            self.inf_list = []
            self.dist_list = []

    def feed(self, m, starts, ybk, xbk, prods, gcol, codes) -> None:
        gen_counts = self.gen_counts
        node_gc = _NODE_GC
        end = starts[m]
        pred_idx = list(compress(count(), ybk))
        pred_idx.append(end)  # sentinel: never < any record bound
        count_mask = self.counted.append
        masks = self.masks
        store_mask = masks.append
        pi = 0
        nxt = pred_idx[0]
        gen_cap = self.gen_cap
        if self.track_trees:
            sets_ = self.sets_
            dists = self.dists
            gens = self.gens
            store_set = sets_.append
            store_dist = dists.append
            count_inf = self.inf_list.append
            count_dist = self.dist_list.append
            empty = _EMPTY_SET
            truncated = self.truncated
            for r in range(m):
                b = starts[r + 1]
                cur_mask = 0
                cur_set = empty
                cur_dist = -1
                while nxt < b:
                    j = nxt
                    pi += 1
                    nxt = pred_idx[pi]
                    if xbk[j]:
                        p = prods[j]
                        pmask = masks[p]
                        if not pmask:
                            continue
                        gen_set = sets_[p]
                        dist = dists[p] + 1
                        count_mask(pmask)
                        count_inf(len(gen_set))
                        count_dist(dist)
                        for gid in gen_set:
                            record = gens[gid]
                            if dist > record[0]:
                                record[0] = dist
                            record[1] += 1
                        cur_mask |= pmask
                        if gen_set:
                            if cur_set:
                                merged = cur_set | gen_set
                                if len(merged) > gen_cap:
                                    merged = frozenset(
                                        sorted(merged)[:gen_cap]
                                    )
                                    truncated += 1
                                cur_set = merged
                            else:
                                cur_set = gen_set
                        if dist > cur_dist:
                            cur_dist = dist
                    else:
                        gc = gcol[j]
                        gen_counts[gc] += 1
                        gens.append([0, 0])
                        gen_set = frozenset((len(gens) - 1,))
                        cur_mask |= 1 << gc
                        if cur_set:
                            merged = cur_set | gen_set
                            if len(merged) > gen_cap:
                                merged = frozenset(
                                    sorted(merged)[:gen_cap])
                                truncated += 1
                            cur_set = merged
                        else:
                            cur_set = gen_set
                        if cur_dist < 0:
                            cur_dist = 0
                code = codes[r]
                if code == _NO_OUTPUT or not code & 1:
                    store_mask(0)
                    store_set(empty)
                    store_dist(0)
                elif cur_mask:
                    dist = cur_dist + 1
                    count_mask(cur_mask)
                    count_inf(len(cur_set))
                    count_dist(dist)
                    for gid in cur_set:
                        record = gens[gid]
                        if dist > record[0]:
                            record[0] = dist
                        record[1] += 1
                    store_mask(cur_mask)
                    store_set(cur_set)
                    store_dist(dist)
                else:
                    gc = node_gc.get(code >> 1)
                    if gc is None:
                        store_mask(0)
                        store_set(empty)
                        store_dist(0)
                    else:
                        gen_counts[gc] += 1
                        gens.append([0, 0])
                        store_mask(1 << gc)
                        store_set(frozenset((len(gens) - 1,)))
                        store_dist(0)
            self.truncated = truncated
        else:
            for r in range(m):
                b = starts[r + 1]
                cur_mask = 0
                while nxt < b:
                    j = nxt
                    pi += 1
                    nxt = pred_idx[pi]
                    if xbk[j]:
                        pmask = masks[prods[j]]
                        if pmask:
                            count_mask(pmask)
                            cur_mask |= pmask
                    else:
                        gc = gcol[j]
                        gen_counts[gc] += 1
                        cur_mask |= 1 << gc
                code = codes[r]
                if code == _NO_OUTPUT or not code & 1:
                    store_mask(0)
                elif cur_mask:
                    count_mask(cur_mask)
                    store_mask(cur_mask)
                else:
                    gc = node_gc.get(code >> 1)
                    if gc is None:
                        store_mask(0)
                    else:
                        gen_counts[gc] += 1
                        store_mask(1 << gc)

    def finalize(self) -> tuple[PathStats, TreeStats | None]:
        stats = PathStats()
        stats.gen_counts = self.gen_counts
        stats.propagate_elements = len(self.counted)
        stats.combo_counts.update(self.counted)
        class_counts = stats.class_counts
        for mask, n in stats.combo_counts.items():
            for bit in _MASK_BITS[mask]:
                class_counts[bit] += n
        if not self.track_trees:
            return stats, None
        trees = TreeStats()
        trees.truncated = self.truncated
        trees.influence_hist.update(self.inf_list)
        trees.distance_hist.update(self.dist_list)
        depth_hist = trees.depth_hist
        agg_hist = trees.agg_hist
        for depth, n in self.gens:
            depth_hist[depth] += 1
            agg_hist[depth] += n
        return stats, trees


# ======================================================================
# Merge: consume payloads in segment order, finalize to a result.
# ======================================================================

class SegmentMerge:
    """Accumulates segment payloads (in order) into one result."""

    def __init__(self, config, name, n_static, ops,
                 profile_counts=None, static_counts=None):
        self.cfg = config
        self.name = name
        self.n_static = n_static
        self.ops = ops
        self.static_counts = static_counts
        self.specs = config.predictors
        nk = len(self.specs)
        self.m = 0
        self.A = 0
        self.segments = 0
        self.out_global = bytearray()
        self.pc_counts: Counter = Counter()
        self.d_ids: set = set()
        self.d_arcs = 0
        self.group_parts: list = []
        cfg = config
        self.banks = []
        for k in range(nk):
            bank = {
                "node": Counter(),
                "y_parts": [],
                "x_parts": [],
                "walk": None,
            }
            if cfg.track_paths:
                bank["walk"] = _ResumableWalk(
                    self.specs[k] in cfg.trees_for, cfg.gen_cap)
            if cfg.track_ops:
                bank["ops"] = Counter()
            if cfg.track_branches:
                bank["branch"] = Counter()
            if cfg.track_sequences:
                bank["seq_parts"] = []
            if cfg.track_unpred:
                bank["unpred_parts"] = []
            if cfg.track_critical:
                bank["miss"] = Counter()
                bank["term"] = Counter()
            self.banks.append(bank)

    def add(self, payload: dict) -> None:
        if payload["r0"] != self.m:
            raise ShardError(
                f"segment merged out of order: got r0={payload['r0']}, "
                f"expected {self.m}")
        cfg = self.cfg
        banks = payload["banks"]
        # Resolve cross-segment X bits now: every producer < r0 has
        # already landed in out_global.
        patches = payload["x_patches"]
        if patches:
            out_global = self.out_global
            for j, p in patches:
                ob = out_global[p]
                if ob:
                    for k, bank in enumerate(banks):
                        if (ob >> k) & 1:
                            bank["xbk"][j] = 1
        self.out_global.extend(payload["out"])
        m = payload["n"]
        for k, acc in enumerate(self.banks):
            bank = banks[k]
            acc["node"].update(bank["node"])
            acc["y_parts"].append(bank["ybk"])
            acc["x_parts"].append(bytes(bank["xbk"]))
            if acc["walk"] is not None:
                acc["walk"].feed(
                    m, payload["starts"], bank["ybk"], bank["xbk"],
                    payload["prods"], payload["gcol"], bank["codes"])
            if cfg.track_ops:
                acc["ops"].update(bank["ops"])
            if cfg.track_branches:
                acc["branch"].update(bank["branch"])
            if cfg.track_sequences:
                acc["seq_parts"].append(bank["seq"])
            if cfg.track_unpred:
                acc["unpred_parts"].append(bank["unpred"])
            if cfg.track_critical:
                acc["miss"].update(bank["miss"])
                acc["term"].update(bank["term"])
        self.m += m
        self.A += payload["A"]
        self.segments += 1
        self.pc_counts.update(payload["pc_counts"])
        self.d_ids |= payload["d_ids"]
        self.d_arcs += payload["d_arcs"]
        self.group_parts.append(payload["group_key"])

    def finalize(self) -> AnalysisResult:
        cfg = self.cfg
        n_static = self.n_static
        m, A = self.m, self.A
        if self.static_counts is None:
            final_counts = [0] * n_static
            for pc, n in self.pc_counts.items():
                final_counts[pc] = n
        else:
            final_counts = self.static_counts
        result = AnalysisResult(
            name=self.name,
            nodes=m,
            arcs=A,
            d_nodes=len(self.d_ids),
            d_arcs=self.d_arcs,
            static_instructions=n_static,
            static_counts=list(final_counts),
        )
        group_all: list = []
        for part in self.group_parts:
            group_all.extend(part)
        use_class = ArcGroupTable._use_class
        uses = {
            key: use_class(key, size, final_counts, n_static)
            for key, size in Counter(group_all).items()
        }
        preds = []
        for k, acc in enumerate(self.banks):
            node_stats = NodeStats()
            class_counts = node_stats.class_counts
            for code, n in acc["node"].items():
                if code == _NO_OUTPUT:
                    node_stats.no_output = n
                else:
                    class_counts[code >> 1][code & 1] = n
            pred = PredictorResult(kind=self.specs[k], nodes=node_stats)
            if cfg.track_ops:
                # Counter.update preserves global first-occurrence
                # order across segments, so assigning (like the serial
                # engine) resolves op-name collisions identically.
                node_ops = Counter()
                for (code, opx), n in acc["ops"].items():
                    if code != _NO_OUTPUT:
                        node_ops[
                            (InKind(code >> 1), bool(code & 1),
                             self.ops[opx][0])
                        ] = n
                pred.node_ops = node_ops
            if cfg.track_branches:
                branches = BranchStats()
                for code, n in acc["branch"].items():
                    if code != _NO_OUTPUT:
                        branches.class_counts[code >> 1][code & 1] = n
                pred.branches = branches
            if cfg.track_sequences:
                pred.sequences = _run_lengths(
                    b"".join(acc["seq_parts"]))
            if cfg.track_unpred:
                pred.unpred = _run_lengths(
                    b"".join(acc["unpred_parts"]))
            if cfg.track_critical:
                critical = CriticalPoints(n_static)
                misses = critical.output_misses
                for pc, n in acc["miss"].items():
                    misses[pc] = n
                terms = critical.terminations
                for pc, n in acc["term"].items():
                    terms[pc] = n
                pred.critical = critical
            if acc["walk"] is not None:
                pred.paths, pred.trees = acc["walk"].finalize()
            # Arc fold over the whole trace at once: the combo byte is
            # (x<<1)|y, every byte 0..3, grouped with one C-speed
            # Counter (ArcStats cells are purely additive).
            xk = int.from_bytes(b"".join(acc["x_parts"]), "little")
            yk = int.from_bytes(b"".join(acc["y_parts"]), "little")
            combo_bytes = ((xk << 1) | yk).to_bytes(A, "little")
            counts_k = pred.arcs.counts
            for (key, combo), n in Counter(
                zip(group_all, combo_bytes)
            ).items():
                counts_k[uses[key]][combo] += n
            preds.append(pred)

        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("analyze.passes", 1)
            recorder.count("analyze.nodes", m)
            recorder.count("analyze.arcs", A)
            recorder.count("analyze.segments", self.segments)
            for k, pred in enumerate(preds):
                for behavior, n in (
                    pred.nodes.behavior_counts().items()
                ):
                    if n:
                        recorder.count(
                            f"analyze.pred.{self.specs[k]}."
                            f"{behavior.name.lower()}", n,
                        )
        for pred in preds:
            result.predictors[pred.kind] = pred
        return result


# ======================================================================
# In-memory segmented analysis (threads or inline) — the parity/fuzz
# vehicle, and the small-trace path.
# ======================================================================

def analyze_columns_segmented(columns, config, name="trace",
                              segments=2, profile_counts=None,
                              static_counts=None, index=None,
                              executor="thread",
                              max_workers=None) -> AnalysisResult:
    """Segment-parallel twin of ``analyze_columns``.

    Splits ``columns`` at checkpoint boundaries (building an in-memory
    index for exactly this config when none is given — deliberately
    exercising the same resume machinery the sidecar path uses), runs
    :func:`compute_segment` per segment, and merges in order.  Byte-
    identical to the serial engine for every config the kernel
    supports.
    """
    cfg = config
    n_records = columns.n_records
    m = (n_records if cfg.max_instructions is None
         else min(cfg.max_instructions, n_records))
    family = ((cfg.predictors,
               (cfg.branch_predictor, cfg.gshare_bits))
              if index is None else (index.specs, index.branch))
    if index is None:
        bounds = plan_bounds(m, segments)
        if len(bounds) > 2:
            index = build_index(columns, bounds, family[0], family[1])
            plan = select_segments(index, m, segments)
        else:
            plan = [(0, m, 0, 0)]
    else:
        reason = index.supports(cfg)
        if reason is not None:
            raise ShardError(f"segment index unusable: {reason}")
        plan = select_segments(index, m, segments)
    if len(plan) < 2:
        from repro.core.kernel.engine import analyze_columns

        return analyze_columns(columns, cfg, name, profile_counts,
                               static_counts)

    br_kind, br_bits = cfg.branch_predictor, cfg.gshare_bits

    def run_one(seg):
        r0, r1, __arc0, t0 = seg
        cols = _slice_columns(columns, r0, r1)
        states = index.states_at(t0, cfg.predictors, br_kind, br_bits)
        counts_start = index.counts_at(t0)
        return compute_segment(cols, r0, states, counts_start, cfg,
                               profile_counts)

    merge = SegmentMerge(cfg, name, columns.n_static, columns.ops,
                         profile_counts, static_counts)
    if executor == "thread":
        from concurrent.futures import ThreadPoolExecutor

        workers = max_workers or min(len(plan), 8)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for payload in pool.map(run_one, plan):
                merge.add(payload)
    else:
        for seg in plan:
            merge.add(run_one(seg))
    return merge.finalize()


# ======================================================================
# Stored-trace segmented analysis: TaskPool workers decode their own
# byte range, the parent merges (and walks) as payloads stream back.
# ======================================================================

def _segment_task(body, header, index, seg, config, profile_counts):
    """Worker entry: decode one record range and analyse it."""
    r0, r1, arc0, t0 = seg
    byte_off = _REC_BYTES * r0 + _SRC_BYTES * arc0
    cols = TraceColumns.from_v2_range(body, header, r0, r1, byte_off)
    states = index.states_at(t0, config.predictors,
                             config.branch_predictor,
                             config.gshare_bits)
    counts_start = index.counts_at(t0)
    return compute_segment(cols, r0, states, counts_start, config,
                           profile_counts)


def prepare_file_segments(path, config, index, segments, name="trace",
                          profile_counts=None, static_counts=None):
    """Plan a stored v2 trace for segment-parallel execution.

    Returns ``(task_args, merge)``: one positional-args tuple per
    segment for :func:`_segment_task` (schedule them on any
    :class:`~repro.runner.pool.TaskPool` — the runner mixes them with
    whole-job tasks) and the :class:`SegmentMerge` to feed payloads in
    segment order.  Raises :class:`ShardError` when the trace cannot
    be segmented (stale/unsupported index, budget below the first
    checkpoint).
    """
    from repro.cpu.tracefile import read_trace_raw

    header, body = read_trace_raw(path)
    n_records = header["n_records"]
    if index.n_records != n_records:
        raise ShardError(
            f"segment index is stale: indexed {index.n_records} "
            f"records, trace has {n_records}")
    reason = index.supports(config)
    if reason is not None:
        raise ShardError(f"segment index unusable: {reason}")
    m = (n_records if config.max_instructions is None
         else min(config.max_instructions, n_records))
    plan = select_segments(index, m, segments)
    if len(plan) < 2:
        raise ShardError("no usable checkpoint below the budget")
    task_args = [
        (body, header, index, seg, config, profile_counts)
        for seg in plan
    ]
    # ops entries from the header are (op, category_value, has_imm);
    # finalize only reads [0], the op name, so the raw tuples serve.
    merge = SegmentMerge(config, name, max(header["n_static"], 1),
                         [tuple(entry) for entry in header["ops"]],
                         profile_counts, static_counts)
    return task_args, merge


def analyze_trace_file_segmented(path, config, index, pool,
                                 name="trace", segments=2,
                                 profile_counts=None,
                                 static_counts=None) -> AnalysisResult:
    """Analyse a stored v2 trace segment-parallel across ``pool``.

    The parent un-gzips the body once; each :class:`TaskPool` worker
    decodes only its own byte range (fork shares the body copy-on-
    write) and streams its payload back, so decode — the dominant
    serial cost — parallelizes too.  Payloads merge in segment order
    as they arrive; the parent's sequential paths walk overlaps the
    workers' compute.  Any segment task that exhausts its retries
    raises :class:`ShardError` (callers fall back to serial analysis,
    which is byte-identical by construction).
    """
    from repro.runner.pool import Task, TaskError

    task_args, merge = prepare_file_segments(
        path, config, index, segments, name=name,
        profile_counts=profile_counts, static_counts=static_counts,
    )
    recorder = get_recorder()
    tasks = [
        Task(key=f"seg{i}", fn=_segment_task, args=args)
        for i, args in enumerate(task_args)
    ]
    plan = [args[3] for args in task_args]
    pending = {}
    next_seg = 0
    with recorder.span("analyze"):
        for key, outcome in pool.run_stream(tasks):
            if isinstance(outcome, TaskError):
                raise ShardError(
                    f"segment task {key} failed after "
                    f"{outcome.attempts} attempts ({outcome.kind}): "
                    f"{outcome.error}")
            pending[int(key[3:])] = outcome.value
            while next_seg in pending:
                merge.add(pending.pop(next_seg))
                next_seg += 1
        if next_seg != len(plan):
            raise ShardError(
                f"segment merge incomplete: {next_seg}/{len(plan)}")
        return merge.finalize()
