"""Unpredictability analysis (the paper's Section 6 future work).

"As we did this work, it became evident that unpredictability is as
interesting as predictability. [...] study of unpredictable values may
give insight into making them predictable; this remains for future
research."

Two complementary views are implemented:

* :class:`UnpredTracker` — the mirror image of the Fig. 12 sequence
  statistics: maximal runs of consecutive dynamic instructions whose
  inputs and outputs were *all* mispredicted.  Long unpredictable
  regions are where speculation is pure loss.
* :class:`CriticalPoints` — per-static-instruction attribution of
  mispredicted outputs and of *termination* events (a predictable
  input met an unpredictable output).  This serves the paper's stated
  goal of "identifying critical points for prediction; i.e. places
  where prediction and speculation may have greater payoff": a static
  instruction that terminates predictability frequently is exactly
  such a place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stats import SequenceStats


class UnpredTracker:
    """Tracks maximal runs of fully-mispredicted instructions."""

    def __init__(self):
        self.stats = SequenceStats()
        self._run = 0

    def on_node(self, fully_unpredicted: bool) -> None:
        if fully_unpredicted:
            self._run += 1
        else:
            if self._run:
                self.stats.add_run(self._run)
            self._run = 0

    def finalize(self) -> None:
        if self._run:
            self.stats.add_run(self._run)
        self._run = 0


@dataclass(slots=True)
class CriticalSite:
    """One static instruction's misprediction profile."""

    pc: int
    executions: int
    output_misses: int
    terminations: int

    @property
    def miss_rate(self) -> float:
        return self.output_misses / self.executions if self.executions else 0.0


@dataclass(slots=True)
class CriticalPoints:
    """Per-PC misprediction and termination attribution.

    ``output_misses[pc]`` counts dynamic instances whose output was not
    predicted; ``terminations[pc]`` counts the subset that additionally
    had a correctly predicted input (i.e. terminated predictability).
    """

    n_static: int
    output_misses: list = field(default=None)
    terminations: list = field(default=None)

    def __post_init__(self):
        if self.output_misses is None:
            self.output_misses = [0] * self.n_static
        if self.terminations is None:
            self.terminations = [0] * self.n_static

    def record(self, pc: int, terminated: bool) -> None:
        self.output_misses[pc] += 1
        if terminated:
            self.terminations[pc] += 1

    def top_sites(self, static_counts, count: int = 10,
                  by: str = "terminations") -> list[CriticalSite]:
        """The ``count`` static instructions with the most termination
        (or output-miss) events — the model's 'critical points'.

        Args:
            static_counts: per-PC execution counts from the run.
            count: how many sites to return.
            by: ranking key, ``"terminations"`` or ``"output_misses"``.
        """
        if by not in ("terminations", "output_misses"):
            raise ValueError(f"unknown ranking: {by!r}")
        key_list = getattr(self, by)
        ranked = sorted(
            range(self.n_static), key=lambda pc: key_list[pc], reverse=True
        )
        sites = []
        for pc in ranked[:count]:
            if key_list[pc] == 0:
                break
            sites.append(CriticalSite(
                pc=pc,
                executions=static_counts[pc],
                output_misses=self.output_misses[pc],
                terminations=self.terminations[pc],
            ))
        return sites

    def total_terminations(self) -> int:
        return sum(self.terminations)

    def concentration(self, top: int = 10) -> float:
        """Fraction of all terminations caused by the ``top`` worst
        static instructions — high concentration means a small, fixable
        set of critical points."""
        total = self.total_terminations()
        if not total:
            return 0.0
        worst = sorted(self.terminations, reverse=True)[:top]
        return sum(worst) / total
