"""Explicit dynamic prediction graph for small traces.

The streaming :class:`~repro.core.analysis.Analyzer` never materialises
the DPG — it cannot, at hundreds of thousands of nodes.  For small
traces, though, an explicit graph is invaluable: the examples use it to
print the paper's Fig. 3, and the test suite cross-validates the
streaming classification against an independent graph-based one.

Nodes are dynamic instruction uids (``int``) plus ``("D", key)`` tuples
for input-data nodes.  Edges carry the ``<x,y>`` label, the value
passed, and the operand slot.  :func:`classify_uses` adds the
single/repeated-use classification, which needs the whole graph.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from repro.core.events import (
    ARC_BEHAVIOR,
    ARC_LABELS,
    Behavior,
    UseClass,
    arc_code,
    in_kind,
    node_behavior,
    node_class_name,
)
from repro.cpu.trace import DynInst
from repro.isa.opcodes import Category
from repro.predictors import GsharePredictor, PredictorBank


def build_dpg(
    trace,
    predictor: str = "stride",
    gshare_bits: int = 16,
) -> nx.MultiDiGraph:
    """Build the DPG of ``trace`` under one value predictor.

    Every dynamic instruction becomes a node with attributes ``pc``,
    ``op``, ``out``, ``out_predicted`` (None when the node has no
    predictable output), ``kind`` (:class:`InKind`), ``behavior`` and
    ``label``.  Every true dependence becomes an edge with ``x``, ``y``
    (bools), ``label`` (``"<p,n>"`` style), ``value`` and ``slot``.
    """
    graph = nx.MultiDiGraph()
    bank = PredictorBank(predictor)
    gshare = GsharePredictor(gshare_bits)
    for dyn in trace:
        _add_node(graph, dyn, bank, gshare)
    classify_uses(graph)
    return graph


def _add_node(graph, dyn: DynInst, bank, gshare) -> None:
    pc = dyn.pc
    y_flags = [
        bank.see_input(pc, slot, src.value)
        for slot, src in enumerate(dyn.srcs)
    ]
    category = dyn.category
    if category is Category.BRANCH:
        out_predicted = gshare.see(pc, dyn.taken)
    elif dyn.out is None:
        out_predicted = None
    elif dyn.passthrough is not None:
        out_predicted = y_flags[dyn.passthrough]
    elif category in (Category.LOAD, Category.STORE, Category.JUMP_REG):
        out_predicted = False  # pass-through of an immediate input
    else:
        out_predicted = bank.see_output(pc, dyn.out)
    has_p = any(y_flags)
    has_n = not all(y_flags)
    kind = in_kind(has_p, has_n, dyn.has_imm)
    if out_predicted is None:
        behavior = Behavior.OTHER
        label = None
    else:
        behavior = node_behavior(kind, out_predicted)
        label = node_class_name(kind, out_predicted)
    graph.add_node(
        dyn.uid,
        pc=pc,
        op=dyn.op,
        category=category,
        out=dyn.out,
        taken=dyn.taken,
        has_imm=dyn.has_imm,
        out_predicted=out_predicted,
        kind=kind,
        behavior=behavior,
        label=label,
    )
    for slot, src in enumerate(dyn.srcs):
        if src.producer is None:
            producer = ("D", src.d_key())
            if producer not in graph:
                graph.add_node(producer, kind="data", behavior=None)
            x_flag = False
        else:
            producer = src.producer
            x_flag = bool(graph.nodes[producer]["out_predicted"])
        y_flag = y_flags[slot]
        code = arc_code(x_flag, y_flag)
        graph.add_edge(
            producer,
            dyn.uid,
            slot=slot,
            x=x_flag,
            y=y_flag,
            value=src.value,
            label=ARC_LABELS[code],
            behavior=ARC_BEHAVIOR[code],
        )


def classify_uses(graph: nx.MultiDiGraph) -> None:
    """Annotate every edge with its :class:`UseClass`.

    Arcs from one producer node to dynamic instances of the same static
    consumer form a use group; groups of size > 1 are repeated-use,
    subdivided into write-once (real producer whose static instruction
    executed exactly once in the graph) and input-data (``D`` producer).
    """
    static_counts: Counter = Counter(
        data["pc"] for __, data in graph.nodes(data=True) if "pc" in data
    )
    groups: Counter = Counter()
    for producer, consumer in graph.edges():
        consumer_pc = graph.nodes[consumer].get("pc")
        groups[(producer, consumer_pc)] += 1
    for producer, consumer, key in graph.edges(keys=True):
        consumer_pc = graph.nodes[consumer].get("pc")
        size = groups[(producer, consumer_pc)]
        if size == 1:
            use = UseClass.SINGLE
        elif isinstance(producer, tuple):
            use = UseClass.DATA
        elif static_counts[graph.nodes[producer]["pc"]] == 1:
            use = UseClass.WRITE_ONCE
        else:
            use = UseClass.REPEAT
        graph.edges[producer, consumer, key]["use"] = use


def behavior_counts(graph: nx.MultiDiGraph):
    """Return (node behaviour Counter, arc behaviour Counter)."""
    node_counts: Counter = Counter(
        data["behavior"]
        for __, data in graph.nodes(data=True)
        if data.get("behavior") is not None
    )
    arc_counts: Counter = Counter(
        data["behavior"] for __, __, data in graph.edges(data=True)
    )
    return node_counts, arc_counts


def node_summary(graph: nx.MultiDiGraph, uid: int) -> str:
    """One-line description of a node, for listings and examples."""
    data = graph.nodes[uid]
    if data.get("kind") == "data":
        return f"D node {uid}"
    label = data["label"] or "-"
    return (
        f"uid={uid} pc={data['pc']} {data['op']} out={data['out']!r} "
        f"class={label} behavior={getattr(data['behavior'], 'name', '-')}"
    )
