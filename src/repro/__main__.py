"""``python -m repro`` — the unified command line (see repro/cli.py)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
