PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-smoke kernel-parity shard-parity \
        service-smoke qos-smoke campaign-smoke fleet-smoke clean-cache

## Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

## The suite minus the slow end-to-end runs.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Full pytest-benchmark harness (regenerates exhibit artifacts).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Fast CI smoke: cold-vs-warm sweep through the two-tier cache;
## writes BENCH_runner.json at the repo root and fails if a warm
## sweep is not >= 3x faster than cold.
bench-smoke:
	$(PYTHON) benchmarks/bench_runner.py

## Columnar-kernel parity gate: the differential test suites (fast
## fuzz tier included) plus the full parity matrix, which writes
## reports/kernel_parity.json and fails on any byte-level divergence
## between the columnar and reference engines (see docs/kernel.md).
kernel-parity:
	$(PYTHON) -m pytest -x -q tests/core/test_kernel_parity.py \
		tests/properties/test_kernel_fuzz.py tests/runner/test_engine.py
	$(PYTHON) benchmarks/bench_kernel.py

## Segment-parallel parity gate: adversarial boundary tests, the
## runner's segmented/chaos/reindex suite, policy semantics, and the
## segmented differential tier (the parity suite runs every case at
## segments>1 too).  See docs/sharding.md.
shard-parity:
	$(PYTHON) -m pytest -x -q tests/core/test_shard.py \
		tests/runner/test_segmented.py tests/runner/test_policy.py \
		tests/core/test_kernel_parity.py \
		tests/properties/test_kernel_fuzz.py

## Service load smoke: zipf-skewed concurrent clients against a
## fresh server; writes BENCH_service.json at the repo root and
## fails on any 5xx, a zero coalesce rate, warm p50 < 5x cold, or
## an unclean drain.
service-smoke:
	$(PYTHON) benchmarks/bench_service.py --smoke

## Multi-tenant QoS smoke: the deterministic fairness/quota/
## attribution suites, then the bench soak's qos phase — an abusive
## tenant at >=5x quota must not degrade compliant p99 by more than
## 25%, shed zero compliant requests, or change any result byte vs
## the serial reference; attribution must cover >=90% of wall time.
## Artifacts: BENCH_service.json (qos section) and
## reports/qos_attribution.json (see docs/qos.md).
qos-smoke:
	$(PYTHON) -m pytest -x -q tests/service/test_qos.py \
		tests/service/test_qos_broker.py
	$(PYTHON) benchmarks/bench_service.py --smoke

## Campaign smoke: the 2x2 generated-workload campaign end-to-end,
## cold then warm (a fresh runner over the same store must touch 0
## pool jobs, checked via the runner.resolve.* counters); emits the
## registry-complete report to campaign-report/ and cold-vs-warm
## wall times to BENCH_campaign.json at the repo root.
campaign-smoke:
	$(PYTHON) benchmarks/bench_campaign.py

## Fleet chaos smoke: a supervised 2-worker fleet under the seeded
## kill/wedge plan (zero failed client requests, byte-identical
## results, healthy restart through backoff), then the store scrub
## over seeded corruption (every bad entry quarantined, rerun
## clean).  Artifacts: fleet-out/ (supervisor.log, shared cache/)
## and scrub-out/scrub_report.jsonl — the CI uploads both.
fleet-smoke:
	$(PYTHON) -m repro chaos --fleet --keep fleet-out
	$(PYTHON) benchmarks/scrub_smoke.py --out scrub-out

## Drop both cache tiers of the default store.
clean-cache:
	$(PYTHON) -m repro cache clear
