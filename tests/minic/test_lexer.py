"""Tests for the mini-C tokenizer."""

import pytest

from repro.errors import CompileError
from repro.minic.lexer import tokenize


def kinds_and_values(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestLexer:
    def test_integers(self):
        assert kinds_and_values("0 42 0x1F") == [
            ("int", 0), ("int", 42), ("int", 31),
        ]

    def test_floats(self):
        tokens = kinds_and_values("1.5 0.25 2e3 1.0e-2")
        assert tokens == [
            ("float", 1.5), ("float", 0.25), ("float", 2000.0),
            ("float", 0.01),
        ]

    def test_int_vs_float_disambiguation(self):
        tokens = kinds_and_values("1.5")
        assert tokens == [("float", 1.5)]
        tokens = kinds_and_values("15")
        assert tokens == [("int", 15)]

    def test_char_literals(self):
        assert kinds_and_values("'a' '\\n' '\\0'") == [
            ("int", 97), ("int", 10), ("int", 0),
        ]

    def test_string_literal(self):
        assert kinds_and_values('"hi\\n"') == [("string", "hi\n")]

    def test_keywords_vs_names(self):
        tokens = kinds_and_values("int foo while whilex")
        assert tokens == [
            ("kw", "int"), ("name", "foo"), ("kw", "while"),
            ("name", "whilex"),
        ]

    def test_multichar_operators_greedy(self):
        tokens = [t.value for t in tokenize("a <<= b >> c <= d < e")[:-1]]
        assert tokens == ["a", "<<=", "b", ">>", "c", "<=", "d", "<", "e"]

    def test_comments_stripped(self):
        tokens = kinds_and_values("a // line comment\nb /* block\n */ c")
        assert [v for __, v in tokens] == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        lines = {t.value: t.line for t in tokens if t.kind == "name"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_line_numbers_after_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")

    def test_bad_escape(self):
        with pytest.raises(CompileError):
            tokenize("'\\q'")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"
