"""Frontend error contract: positioned messages, no stray exceptions."""

from __future__ import annotations

import re

import pytest

from repro.errors import CompileError, InternalCompilerError, MinicError
from repro.minic import compile_source

_POSITIONED = re.compile(r"line \d+, col \d+: ")


def _error(source: str) -> CompileError:
    with pytest.raises(CompileError) as info:
        compile_source(source)
    return info.value


class TestPositions:
    def test_lexer_error(self):
        error = _error("int main() { int x = `; }")
        assert _POSITIONED.match(str(error))

    def test_parser_error(self):
        error = _error("int main( { return 0; }")
        assert _POSITIONED.match(str(error))
        assert error.line == 1

    def test_parser_error_line_tracks_input(self):
        error = _error("int main() {\n  int x = 1;\n  x ++ +;\n}\n")
        assert error.line == 3

    def test_semantic_error(self):
        error = _error("int main() {\n  return missing;\n}\n")
        assert _POSITIONED.match(str(error))
        assert error.line == 2

    def test_type_error(self):
        error = _error(
            "int main() {\n  float f = 1.0;\n  f[0] = 1;\n  return 0;\n}\n"
        )
        assert _POSITIONED.match(str(error))


class TestHierarchy:
    def test_compile_error_is_minic_error(self):
        assert issubclass(CompileError, MinicError)
        assert issubclass(InternalCompilerError, CompileError)

    def test_internal_error_net(self, monkeypatch):
        from repro.minic import compiler

        def boom(ast):
            raise KeyError("synthetic")

        monkeypatch.setattr(compiler, "analyze", boom)
        with pytest.raises(InternalCompilerError) as info:
            compile_source("int main() { return 0; }")
        assert "KeyError" in str(info.value)
        assert isinstance(info.value.__cause__, KeyError)

    def test_real_errors_pass_through_unwrapped(self):
        error = _error("int main() { return missing; }")
        assert not isinstance(error, InternalCompilerError)
