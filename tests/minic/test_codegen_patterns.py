"""Tests for the *shape* of generated code.

The predictability statistics depend on the code having the idioms of
optimised compiler output; these tests pin those idioms down at the
assembly level.
"""

import re

import pytest

from repro.minic import compile_source


def asm_for(source: str) -> str:
    return compile_source(source)


def body_of(asm: str, func: str) -> str:
    """Extract the lines of one function from the module text."""
    lines = asm.splitlines()
    start = lines.index(f"{func}:")
    out = []
    for line in lines[start + 1:]:
        if line and not line.startswith((" ", "\t", f".{func}")):
            break
        out.append(line)
    return "\n".join(out)


class TestImmediateFolding:
    def test_add_constant_uses_addiu(self):
        asm = asm_for("int main() { int x = 5; return x + 3; }")
        assert "addiu" in asm
        # No li for the 3: it folded into the add.
        assert not re.search(r"li \$\w+, 3\b", asm)

    def test_subtract_constant_negates(self):
        asm = asm_for("int main() { int x = 5; return x - 3; }")
        assert re.search(r"addiu \$\w+, \$\w+, -3", asm)

    def test_and_constant_uses_andi(self):
        asm = asm_for("int main() { int x = 255; return x & 15; }")
        assert "andi" in asm

    def test_shift_by_constant(self):
        asm = asm_for("int main() { int x = 4; return x << 3; }")
        assert re.search(r"sll \$\w+, \$\w+, 3", asm)

    def test_multiply_by_power_of_two_becomes_shift(self):
        asm = asm_for("int main() { int x = 4; return x * 8; }")
        assert re.search(r"sll \$\w+, \$\w+, 3", asm)
        assert "mul" not in asm

    def test_multiply_by_non_power_stays_mul(self):
        asm = asm_for("int main() { int x = 4; return x * 7; }")
        assert "mul" in asm

    def test_compare_with_small_constant_uses_slti(self):
        asm = asm_for("int main() { int x = 4; return x < 10; }")
        assert re.search(r"slti \$\w+, \$\w+, 10", asm)


class TestBranchFusion:
    def test_equality_condition_fuses_to_two_register_branch(self):
        # `if (a == b)` branches on false, so the fused form is bne.
        asm = asm_for(
            "int main() { int a = 1; int b = 2; "
            "if (a == b) return 1; return 0; }"
        )
        assert re.search(r"bne \$s\d, \$s\d, ", asm)
        assert "xor" not in body_of(asm, "main")

    def test_inequality_condition_fuses_to_bne(self):
        asm = asm_for(
            "int main() { int a = 1; int b = 2; "
            "while (a != b) a++; return a; }"
        )
        assert re.search(r"bne \$s\d, \$s\d, ", asm)

    def test_compare_to_zero_uses_zero_register(self):
        asm = asm_for(
            "int main() { int a = 3; if (a == 0) return 1; return 0; }"
        )
        assert re.search(r"bne \$s\d, \$zero, ", asm)
        assert not re.search(r"li \$\w+, 0\b", body_of(asm, "main").split(
            "bne")[0])

    def test_materialised_equality_outside_conditions(self):
        asm = asm_for(
            "int main() { int a = 1; int eq = (a == 2); return eq; }"
        )
        assert "sltiu" in asm  # value form still materialises


class TestLoopShape:
    def test_while_is_bottom_tested(self):
        asm = body_of(asm_for(
            "int main() { int i = 0; while (i < 5) i++; return i; }"
        ), "main")
        lines = [line.strip() for line in asm.splitlines() if line.strip()]
        # The conditional branch back to the body comes after the body.
        branch_indices = [
            index for index, line in enumerate(lines)
            if line.startswith("bne") or line.startswith("beq")
        ]
        body_index = next(
            index for index, line in enumerate(lines) if "addiu" in line
        )
        assert any(index > body_index for index in branch_indices)

    def test_for_loop_structure(self):
        asm = asm_for(
            "int main() { int i; int s = 0; "
            "for (i = 0; i < 8; i++) s += i; return s; }"
        )
        assert ".main_fcond" in asm and ".main_fbody" in asm


class TestRegisterDiscipline:
    def test_scalars_in_callee_saved_registers(self):
        asm = body_of(asm_for(
            "int main() { int a = 1; int b = 2; return a + b; }"
        ), "main")
        assert "$s0" in asm and "$s1" in asm
        # No frame traffic for the scalars beyond the save area.
        assert "($fp)" not in asm

    def test_prologue_saves_used_registers(self):
        asm = body_of(asm_for(
            "int helper() { int a = 1; return a; } "
            "int main() { return helper(); }"
        ), "helper")
        assert re.search(r"sw \$s0, \d+\(\$sp\)", asm)
        assert re.search(r"lw \$s0, \d+\(\$sp\)", asm)

    def test_promoted_global_address_loaded_once(self):
        source = (
            "int tab[64]; int main() { int i; int s = 0; "
            "for (i = 0; i < 64; i++) s += tab[i]; return s; }"
        )
        asm = body_of(asm_for(source), "main")
        # la of the table appears exactly once (in the prologue)...
        assert len(re.findall(r"la \$s\d, g_tab", asm)) == 1
        # ...and the loop body never re-materialises it.
        assert "lui" not in asm.split("fbody")[-1].split("fcond")[0]

    def test_call_spills_live_temporaries(self):
        asm = body_of(asm_for(
            "int g(int x) { return x; } "
            "int main() { return 1 + g(2) + g(3); }"
        ), "main")
        assert re.search(r"sw \$t\d+, \d+\(\$sp\)", asm)

    def test_float_constant_promoted(self):
        source = (
            "float acc; int main() { int i; "
            "for (i = 0; i < 9; i++) acc = acc * 0.5 + 0.5; return 0; }"
        )
        asm = body_of(asm_for(source), "main")
        # 0.5 is loaded into an $f2x register once, not l.d'd per use.
        assert re.search(r"l\.d \$f2\d, \.fc\d", asm)


class TestModuleLayout:
    def test_startup_stub(self):
        asm = asm_for("int main() { return 0; }")
        assert "__start:" in asm
        assert "jal main" in asm

    def test_string_literals_deduplicated(self):
        asm = asm_for(
            'char *a; char *b; int main() { a = "hi"; b = "hi"; return 0; }'
        )
        assert asm.count('.asciiz "hi"') == 1

    def test_global_array_initialiser_layout(self):
        asm = asm_for("int t[4] = {1, 2}; int main() { return 0; }")
        assert "g_t: .word 1, 2, 0, 0" in asm

    def test_main_implicit_return_zero(self):
        asm = body_of(asm_for("int main() { }"), "main")
        assert "li $v0, 0" in asm
