"""Tests for the mini-C type system."""

import pytest

from repro.minic.types import CHAR, FLOAT, INT, Type, VOID, common_numeric


class TestTypeBasics:
    def test_sizes(self):
        assert INT.size() == 4
        assert CHAR.size() == 1
        assert FLOAT.size() == 8
        assert VOID.size() == 0
        assert INT.pointer().size() == 4
        assert FLOAT.pointer().size() == 4

    def test_predicates(self):
        assert INT.is_integral and CHAR.is_integral
        assert FLOAT.is_float
        assert not FLOAT.pointer().is_float
        assert VOID.is_void
        assert INT.pointer().is_pointer
        assert not INT.is_pointer

    def test_pointer_round_trip(self):
        pointer = INT.pointer().pointer()
        assert pointer.ptr == 2
        assert pointer.element().element() == INT

    def test_element_of_non_pointer_raises(self):
        with pytest.raises(ValueError):
            INT.element()

    def test_unknown_base_rejected(self):
        with pytest.raises(ValueError):
            Type("long")

    def test_str(self):
        assert str(INT) == "int"
        assert str(CHAR.pointer()) == "char*"
        assert str(Type("float", 2)) == "float**"

    def test_equality_and_hash(self):
        assert Type("int") == INT
        assert Type("int", 1) != INT
        assert len({INT, Type("int"), CHAR}) == 2


class TestCommonNumeric:
    def test_float_wins(self):
        assert common_numeric(INT, FLOAT) == FLOAT
        assert common_numeric(FLOAT, CHAR) == FLOAT

    def test_integers_promote_to_int(self):
        assert common_numeric(CHAR, CHAR) == INT
        assert common_numeric(INT, CHAR) == INT
