"""Tests for mini-C semantic analysis."""

import pytest

from repro.errors import CompileError
from repro.minic.parser import parse
from repro.minic.sema import S_REGS, analyze
from repro.minic.types import FLOAT, INT


def sema(source):
    return analyze(parse(source))


class TestTypeChecking:
    def test_numeric_conversion_allowed(self):
        sema("int main() { float f = 1; int i = 2.5; return i; }")

    def test_pointer_int_assignment_rejected(self):
        with pytest.raises(CompileError, match="cannot assign"):
            sema("int main() { int *p = 1.5; return 0; }")

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(CompileError, match="dereference"):
            sema("int main() { int x; return *x; }")

    def test_index_non_pointer_rejected(self):
        with pytest.raises(CompileError, match="indexing"):
            sema("int main() { int x; return x[0]; }")

    def test_float_modulo_rejected(self):
        with pytest.raises(CompileError, match="needs integers"):
            sema("int main() { float f; return f % 2; }")

    def test_float_shift_rejected(self):
        with pytest.raises(CompileError, match="needs integers"):
            sema("int main() { float f; f = f << 1; return 0; }")

    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            sema("int main() { return nothing; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            sema("int main() { return missing(); }")

    def test_wrong_arity(self):
        with pytest.raises(CompileError, match="expects 1"):
            sema("int f(int a) { return a; } int main() { return f(); }")

    def test_void_return_with_value(self):
        with pytest.raises(CompileError, match="returns void"):
            sema("void f() { return 3; } int main() { return 0; }")

    def test_missing_return_value(self):
        with pytest.raises(CompileError, match="must return"):
            sema("int f() { return; } int main() { return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="outside a loop"):
            sema("int main() { break; return 0; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(CompileError, match="assign to an array"):
            sema("int a[4]; int main() { a = 0; return 0; }")

    def test_duplicate_local(self):
        with pytest.raises(CompileError, match="duplicate"):
            sema("int main() { int x; int x; return 0; }")

    def test_shadowing_in_inner_scope_allowed(self):
        sema("int main() { int x = 1; { int x = 2; } return x; }")

    def test_no_main_rejected(self):
        with pytest.raises(CompileError, match="no main"):
            sema("int f() { return 1; }")

    def test_too_many_int_params(self):
        with pytest.raises(CompileError, match="more than 4"):
            sema("int f(int a, int b, int c, int d, int e) { return 0; } "
                 "int main() { return 0; }")

    def test_pointer_arith_types(self):
        result = sema(
            "int a[4]; int main() { int *p = a; int *q = p + 1; "
            "return q - p; }"
        )
        assert "main" in result.functions

    def test_global_initialiser_must_be_constant(self):
        with pytest.raises(CompileError, match="constant"):
            sema("int g = 1 + 2; int main() { return 0; }")


class TestStorageAssignment:
    def test_scalars_get_registers(self):
        result = sema("int main() { int a; int b; float f; return 0; }")
        symbols = {s.name: s for s in result.functions["main"].symbols}
        assert symbols["a"].storage == "reg"
        assert symbols["a"].reg in S_REGS
        assert symbols["f"].storage == "reg"
        assert symbols["f"].reg >= 32

    def test_address_taken_goes_to_frame(self):
        result = sema(
            "int main() { int a; int *p = &a; return *p; }"
        )
        symbols = {s.name: s for s in result.functions["main"].symbols}
        assert symbols["a"].storage == "frame"
        assert symbols["a"].address_taken

    def test_arrays_go_to_frame(self):
        result = sema("int main() { int buf[8]; return 0; }")
        symbols = {s.name: s for s in result.functions["main"].symbols}
        assert symbols["buf"].storage == "frame"

    def test_register_overflow_spills(self):
        decls = " ".join(f"int v{i};" for i in range(12))
        result = sema(f"int main() {{ {decls} return 0; }}")
        storages = [s.storage for s in result.functions["main"].symbols]
        assert "frame" in storages and "reg" in storages

    def test_frame_size_8_aligned(self):
        result = sema("int main() { int a[3]; float f[2]; return 0; }")
        assert result.functions["main"].frame_size % 8 == 0

    def test_float_frame_slots_8_aligned(self):
        decls = " ".join(f"float f{i};" for i in range(12))
        result = sema(f"int main() {{ int pad; {decls} return 0; }}")
        for symbol in result.functions["main"].symbols:
            if symbol.storage == "frame" and symbol.ty.is_float:
                assert symbol.offset % 8 == 0

    def test_params_resolved(self):
        result = sema("int f(int a, float b) { return a; } "
                      "int main() { return f(1, 2.0); }")
        params = result.functions["f"].params
        assert [p.ty for p in params] == [INT, FLOAT]


class TestConstantPromotion:
    def test_global_address_promoted(self):
        result = sema(
            "int tab[4]; int main() { int i; int s = 0; "
            "for (i = 0; i < 4; i++) s += tab[i]; return s; }"
        )
        const_regs = result.functions["main"].const_regs
        assert ("ga", "g_tab") in const_regs

    def test_large_constant_promoted(self):
        result = sema(
            "int main() { int a = 0x123456 + 1; int b = 0x123456 + 2; "
            "return a + b; }"
        )
        const_regs = result.functions["main"].const_regs
        assert ("int", 0x123456) in const_regs

    def test_single_use_not_promoted(self):
        result = sema("int main() { return 0x123456; }")
        assert not result.functions["main"].const_regs

    def test_small_constants_not_promoted(self):
        result = sema("int main() { int a = 5 + 5 + 5; return a; }")
        const_regs = result.functions["main"].const_regs
        assert ("int", 5) not in const_regs

    def test_float_constant_promoted(self):
        result = sema(
            "float x; int main() { x = 0.5 * 0.5 + 0.5; return 0; }"
        )
        const_regs = result.functions["main"].const_regs
        assert ("float", 0.5) in const_regs

    def test_promoted_registers_are_saved(self):
        result = sema(
            "int tab[4]; int main() { int i; int s = 0; "
            "for (i = 0; i < 4; i++) s += tab[i]; return s; }"
        )
        info = result.functions["main"]
        for reg in info.const_regs.values():
            assert reg in info.used_s_regs or reg in info.used_f_regs
