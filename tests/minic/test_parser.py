"""Tests for the mini-C parser."""

import pytest

from repro.errors import CompileError
from repro.minic import astnodes as ast
from repro.minic.parser import parse
from repro.minic.types import INT, Type


def parse_expr(text):
    program = parse(f"int main() {{ x = {text}; }}")
    stmt = program.funcs[0].body.stmts[0]
    return stmt.expr.value


def parse_stmt(text):
    program = parse(f"int main() {{ {text} }}")
    return program.funcs[0].body.stmts[0]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.lhs.op == "-"

    def test_parentheses(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_comparison_below_logic(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.lhs.op == "<"

    def test_shift_precedence(self):
        expr = parse_expr("a << 2 + 1")
        assert expr.op == "<<"
        assert expr.rhs.op == "+"

    def test_bitwise_layers(self):
        expr = parse_expr("a | b ^ c & d")
        assert expr.op == "|"
        assert expr.rhs.op == "^"
        assert expr.rhs.rhs.op == "&"

    def test_assignment_right_associative(self):
        program = parse("int main() { a = b = 1; }")
        assign = program.funcs[0].body.stmts[0].expr
        assert isinstance(assign.value, ast.Assign)

    def test_compound_assignment(self):
        program = parse("int main() { a += 2; }")
        assign = program.funcs[0].body.stmts[0].expr
        assert assign.op == "+="

    def test_unary_chain(self):
        expr = parse_expr("-!~a")
        assert expr.op == "-"
        assert expr.operand.op == "!"
        assert expr.operand.operand.op == "~"

    def test_deref_and_addrof(self):
        expr = parse_expr("*p + &q")
        assert isinstance(expr.lhs, ast.Deref)
        assert isinstance(expr.rhs, ast.AddrOf)

    def test_index_chain(self):
        expr = parse_expr("a[1]")
        assert isinstance(expr, ast.Index)

    def test_call_with_args(self):
        expr = parse_expr("f(1, g(2), h())")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[1], ast.Call)

    def test_postfix_increment(self):
        expr = parse_expr("i++")
        assert isinstance(expr, ast.IncDec) and not expr.prefix

    def test_prefix_decrement(self):
        expr = parse_expr("--i")
        assert isinstance(expr, ast.IncDec) and expr.prefix


class TestStatements:
    def test_if_else(self):
        stmt = parse_stmt("if (a) b = 1; else b = 2;")
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.orelse is None
        assert stmt.then.orelse is not None

    def test_while(self):
        stmt = parse_stmt("while (a) a -= 1;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = parse_stmt("do a -= 1; while (a);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_with_decl(self):
        stmt = parse_stmt("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Decl)

    def test_for_empty_clauses(self):
        stmt = parse_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_multi_declarator(self):
        stmt = parse_stmt("int i, j = 2, k;")
        assert isinstance(stmt, ast.DeclGroup)
        assert [d.name for d in stmt.decls] == ["i", "j", "k"]
        assert stmt.decls[1].init.value == 2

    def test_array_decl(self):
        stmt = parse_stmt("int buf[16];")
        assert stmt.array_len == 16

    def test_return_value(self):
        stmt = parse_stmt("return 3;")
        assert isinstance(stmt, ast.Return) and stmt.value.value == 3


class TestTopLevel:
    def test_globals_and_functions(self):
        program = parse(
            "int g = 5;\n"
            "float table[4] = {1.0, 2.0};\n"
            "int main() { return g; }\n"
        )
        assert [g.name for g in program.globals] == ["g", "table"]
        assert program.globals[1].array_len == 4
        assert len(program.globals[1].init) == 2
        assert program.funcs[0].name == "main"

    def test_pointer_types(self):
        program = parse("int *p; char **q; int main() { return 0; }")
        assert program.globals[0].ty == Type("int", 1)
        assert program.globals[1].ty == Type("char", 2)

    def test_params(self):
        program = parse("int f(int a, float b) { return a; } "
                        "int main() { return 0; }")
        params = program.funcs[0].params
        assert [(p.name, p.ty.base) for p in params] == [
            ("a", "int"), ("b", "float"),
        ]

    def test_void_param_list(self):
        program = parse("int f(void) { return 1; } int main() { return 0; }")
        assert program.funcs[0].params == []


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("int main() { a = 1 }")

    def test_unbalanced_paren(self):
        with pytest.raises(CompileError):
            parse("int main() { a = (1; }")

    def test_unterminated_block(self):
        with pytest.raises(CompileError, match="unterminated|expected"):
            parse("int main() {")

    def test_garbage_toplevel(self):
        with pytest.raises(CompileError, match="expected declaration"):
            parse("42;")

    def test_error_has_line(self):
        with pytest.raises(CompileError) as excinfo:
            parse("int main() {\n  a = ;\n}")
        assert excinfo.value.line == 2
