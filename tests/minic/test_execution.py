"""End-to-end behavioural tests: compile mini-C, run, check output."""

import pytest

from repro.errors import CompileError, SimError

from tests.conftest import run_minic


def out(source, **kwargs):
    return run_minic(source, **kwargs)


class TestArithmetic:
    def test_integer_ops(self):
        source = """
        int main() {
            print_int(7 + 3); print_char(' ');
            print_int(7 - 10); print_char(' ');
            print_int(6 * 7); print_char(' ');
            print_int(-17 / 5); print_char(' ');
            print_int(-17 % 5); print_char(' ');
            print_int(13 & 6); print_char(' ');
            print_int(13 | 6); print_char(' ');
            print_int(13 ^ 6); print_char(' ');
            print_int(1 << 10); print_char(' ');
            print_int(-32 >> 2);
            return 0;
        }
        """
        assert out(source) == "10 -3 42 -3 -2 4 15 11 1024 -8"

    def test_comparisons(self):
        source = """
        int main() {
            print_int(3 < 5); print_int(5 < 3); print_int(3 <= 3);
            print_int(4 > 9); print_int(9 >= 9); print_int(2 == 2);
            print_int(2 != 2);
            return 0;
        }
        """
        assert out(source) == "1010110"

    def test_unary(self):
        source = """
        int main() {
            int a = 5;
            print_int(-a); print_char(' ');
            print_int(!a); print_char(' ');
            print_int(!0); print_char(' ');
            print_int(~a);
            return 0;
        }
        """
        assert out(source) == "-5 0 1 -6"

    def test_wraparound(self):
        source = """
        int main() {
            int big = 2147483647;
            print_int(big + 1);
            return 0;
        }
        """
        assert out(source) == "-2147483648"

    def test_division_by_zero_traps(self):
        with pytest.raises(SimError, match="division"):
            out("int main() { int z = 0; return 5 / z; }")

    def test_float_arithmetic(self):
        source = """
        int main() {
            float a = 1.5;
            float b = 0.25;
            print_float(a + b); print_char(' ');
            print_float(a - b); print_char(' ');
            print_float(a * b); print_char(' ');
            print_float(a / b);
            return 0;
        }
        """
        assert out(source) == "1.75 1.25 0.375 6"

    def test_float_comparisons(self):
        source = """
        int main() {
            float a = 1.5;
            print_int(a < 2.0); print_int(a > 2.0);
            print_int(a <= 1.5); print_int(a >= 1.6);
            print_int(a == 1.5); print_int(a != 1.5);
            return 0;
        }
        """
        assert out(source) == "101010"

    def test_int_float_conversion(self):
        source = """
        int main() {
            float f = 7;
            int i = 2.9;
            print_float(f); print_char(' '); print_int(i);
            print_char(' '); print_int(-2.9);
            return 0;
        }
        """
        assert out(source) == "7 2 -2"


class TestControlFlow:
    def test_if_chains(self):
        source = """
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else if (x < 10) return 1;
            return 2;
        }
        int main() {
            print_int(classify(-5)); print_int(classify(0));
            print_int(classify(5)); print_int(classify(50));
            return 0;
        }
        """
        assert out(source) == "-1012"

    def test_while_and_break_continue(self):
        source = """
        int main() {
            int i = 0;
            int total = 0;
            while (1) {
                i++;
                if (i > 10) break;
                if (i % 2) continue;
                total += i;
            }
            print_int(total);
            return 0;
        }
        """
        assert out(source) == "30"

    def test_do_while_runs_once(self):
        source = """
        int main() {
            int n = 0;
            do { n++; } while (0);
            print_int(n);
            return 0;
        }
        """
        assert out(source) == "1"

    def test_nested_for(self):
        source = """
        int main() {
            int count = 0;
            int i, j;
            for (i = 0; i < 5; i++)
                for (j = i; j < 5; j++)
                    count++;
            print_int(count);
            return 0;
        }
        """
        assert out(source) == "15"

    def test_short_circuit_evaluation(self):
        source = """
        int calls;
        int bump() { calls++; return 1; }
        int main() {
            calls = 0;
            int a = 0 && bump();
            int b = 1 || bump();
            print_int(calls); print_int(a); print_int(b);
            return 0;
        }
        """
        assert out(source) == "001"

    def test_logical_values(self):
        source = """
        int main() {
            print_int(3 && 4); print_int(0 && 4);
            print_int(0 || 0); print_int(0 || 7);
            return 0;
        }
        """
        assert out(source) == "1001"


class TestFunctions:
    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { print_int(fib(12)); return 0; }
        """
        assert out(source) == "144"

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { print_int(is_even(10)); print_int(is_odd(7));
                     return 0; }
        """
        # Forward declarations are not in the grammar; use definition
        # order instead.
        source = """
        int is_even(int n);
        int main() { return 0; }
        """
        source = """
        int helper(int n, int odd) {
            if (n == 0) return odd == 0;
            return helper(n - 1, 1 - odd);
        }
        int main() { print_int(helper(10, 0)); print_int(helper(7, 1));
                     return 0; }
        """
        assert out(source) == "11"

    def test_four_int_args(self):
        source = """
        int sum4(int a, int b, int c, int d) { return a + b + c + d; }
        int main() { print_int(sum4(1, 2, 3, 4)); return 0; }
        """
        assert out(source) == "10"

    def test_float_args_and_return(self):
        source = """
        float mix(float a, float b) { return a * 2.0 + b; }
        int main() { print_float(mix(1.5, 0.25)); return 0; }
        """
        assert out(source) == "3.25"

    def test_calls_preserve_callee_saved_locals(self):
        source = """
        int noisy() { int x = 99; int y = 98; return x + y; }
        int main() {
            int keep = 7;
            int other = 11;
            noisy();
            print_int(keep + other);
            return 0;
        }
        """
        assert out(source) == "18"

    def test_call_in_expression_spills_temporaries(self):
        source = """
        int g(int x) { return x * 10; }
        int main() {
            int r = 3 + g(2) + g(1) * 2;
            print_int(r);
            return 0;
        }
        """
        assert out(source) == "43"

    def test_nested_calls_as_arguments(self):
        source = """
        int add(int a, int b) { return a + b; }
        int main() { print_int(add(add(1, 2), add(3, 4))); return 0; }
        """
        assert out(source) == "10"

    def test_exit_code(self):
        from repro.cpu import Machine
        from repro.minic import compile_program

        machine = Machine(
            compile_program("int main() { exit(42); return 0; }"),
            tracing=False,
        )
        result = machine.run()
        assert result.exit_code == 42


class TestMemory:
    def test_global_arrays(self):
        source = """
        int squares[10];
        int main() {
            int i;
            for (i = 0; i < 10; i++) squares[i] = i * i;
            print_int(squares[7]);
            return 0;
        }
        """
        assert out(source) == "49"

    def test_global_initialisers(self):
        source = """
        int a = -3;
        int tab[5] = {10, 20, 30};
        float pi = 3.5;
        int main() {
            print_int(a); print_char(' ');
            print_int(tab[0] + tab[2] + tab[4]); print_char(' ');
            print_float(pi);
            return 0;
        }
        """
        assert out(source) == "-3 40 3.5"

    def test_local_arrays(self):
        source = """
        int main() {
            int buf[4];
            int i;
            for (i = 0; i < 4; i++) buf[i] = i + 1;
            print_int(buf[0] + buf[1] + buf[2] + buf[3]);
            return 0;
        }
        """
        assert out(source) == "10"

    def test_pointers_and_addresses(self):
        source = """
        int main() {
            int x = 5;
            int *p = &x;
            *p = 9;
            print_int(x);
            print_int(*p);
            return 0;
        }
        """
        assert out(source) == "99"

    def test_pointer_walk(self):
        source = """
        int data[5] = {1, 2, 3, 4, 5};
        int main() {
            int *p = data;
            int total = 0;
            int i;
            for (i = 0; i < 5; i++) { total += *p; p++; }
            print_int(total);
            return 0;
        }
        """
        assert out(source) == "15"

    def test_pointer_difference(self):
        source = """
        int data[8];
        int main() {
            int *a = &data[1];
            int *b = &data[6];
            print_int(b - a);
            return 0;
        }
        """
        assert out(source) == "5"

    def test_char_arrays_and_strings(self):
        source = """
        char buf[8];
        int main() {
            char *s = "abc";
            int i = 0;
            while (s[i]) { buf[i] = s[i] + 1; i++; }
            buf[i] = 0;
            i = 0;
            while (buf[i]) { print_char(buf[i]); i++; }
            return 0;
        }
        """
        assert out(source) == "bcd"

    def test_float_arrays(self):
        source = """
        float grid[4];
        int main() {
            int i;
            for (i = 0; i < 4; i++) grid[i] = i * 0.5;
            print_float(grid[3]);
            return 0;
        }
        """
        assert out(source) == "1.5"

    def test_compound_assignment_on_memory(self):
        source = """
        int cell[1];
        int main() {
            cell[0] = 10;
            cell[0] += 5;
            cell[0] <<= 2;
            print_int(cell[0]);
            return 0;
        }
        """
        assert out(source) == "60"

    def test_incdec_semantics(self):
        source = """
        int main() {
            int i = 5;
            print_int(i++); print_int(i);
            print_int(++i); print_int(i--);
            print_int(--i);
            return 0;
        }
        """
        assert out(source) == "56775"


class TestInputs:
    def test_input_words(self):
        source = """
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < input_count(); i++) total += input_word(i);
            print_int(total);
            return 0;
        }
        """
        assert out(source, input_words=[1, 2, 3, 4]) == "10"

    def test_input_floats(self):
        source = """
        int main() {
            int i;
            float total = 0.0;
            for (i = 0; i < input_float_count(); i++)
                total = total + input_float(i);
            print_float(total);
            return 0;
        }
        """
        assert out(source, input_floats=[0.5, 1.25, 3.25]) == "5"


class TestCompileErrors:
    def test_type_errors_surface(self):
        with pytest.raises(CompileError):
            out("int main() { int *p; p = p * 2; return 0; }")

    def test_local_array_initialiser_rejected(self):
        with pytest.raises(CompileError, match="initialisers"):
            out("int main() { int a[2] = 5; return 0; }")


class TestTernary:
    def test_basic_selection(self):
        source = """
        int main() {
            int a = 5;
            print_int(a > 3 ? 10 : 20);
            print_int(a > 9 ? 10 : 20);
            return 0;
        }
        """
        assert out(source) == "1020"

    def test_nested_and_chained(self):
        source = """
        int grade(int score) {
            return score >= 90 ? 4 : score >= 80 ? 3 : score >= 70 ? 2 : 0;
        }
        int main() {
            print_int(grade(95)); print_int(grade(85));
            print_int(grade(75)); print_int(grade(10));
            return 0;
        }
        """
        assert out(source) == "4320"

    def test_only_taken_arm_evaluated(self):
        source = """
        int calls;
        int bump() { calls++; return 7; }
        int main() {
            calls = 0;
            int x = 1 ? 5 : bump();
            print_int(calls); print_int(x);
            return 0;
        }
        """
        assert out(source) == "05"

    def test_mixed_arm_types_promote_to_float(self):
        source = """
        int main() {
            int flag = 0;
            print_float(flag ? 1 : 2.5);
            return 0;
        }
        """
        assert out(source) == "2.5"

    def test_ternary_below_assignment(self):
        source = """
        int main() {
            int x;
            x = 1 ? 2 : 3;
            print_int(x);
            return 0;
        }
        """
        assert out(source) == "2"

    def test_incompatible_arms_rejected(self):
        with pytest.raises(CompileError, match="incompatible"):
            out("int main() { int *p; int x = 1 ? p : 2.5; return 0; }")


class TestSwitch:
    def test_dense_switch_dispatch(self):
        source = """
        int pick(int op) {
            switch (op) {
                case 0: return 100;
                case 1: return 101;
                case 2: return 102;
                case 3: return 103;
                case 4: return 104;
                default: return -1;
            }
        }
        int main() {
            int i;
            for (i = -1; i <= 5; i++) { print_int(pick(i)); print_char(' '); }
            return 0;
        }
        """
        assert out(source).strip() == "-1 100 101 102 103 104 -1"

    def test_dense_switch_uses_jump_table(self):
        from repro.minic import compile_source

        source = """
        int main() {
            int r = 0;
            switch (input_word(0)) {
                case 0: r = 1; break;
                case 1: r = 2; break;
                case 2: r = 3; break;
                case 3: r = 4; break;
            }
            print_int(r);
            return 0;
        }
        """
        asm = compile_source(source)
        assert ".jt0" in asm
        assert "jr $t" in asm
        assert out(source, input_words=[2]) == "3"

    def test_sparse_switch_uses_compare_chain(self):
        from repro.minic import compile_source

        source = """
        int main() {
            switch (input_word(0)) {
                case 5: print_int(1); break;
                case 5000: print_int(2); break;
                default: print_int(0);
            }
            return 0;
        }
        """
        asm = compile_source(source)
        assert ".jt" not in asm
        assert out(source, input_words=[5000]) == "2"

    def test_fallthrough(self):
        source = """
        int main() {
            int r = 0;
            switch (2) {
                case 1: r += 1;
                case 2: r += 2;
                case 3: r += 4;
                break;
                case 4: r += 8;
            }
            print_int(r);
            return 0;
        }
        """
        assert out(source) == "6"

    def test_no_default_falls_to_end(self):
        source = """
        int main() {
            int r = 7;
            switch (99) { case 1: r = 0; break; }
            print_int(r);
            return 0;
        }
        """
        assert out(source) == "7"

    def test_negative_case_values(self):
        source = """
        int main() {
            switch (-3) {
                case -3: print_int(1); break;
                default: print_int(0);
            }
            return 0;
        }
        """
        assert out(source) == "1"

    def test_break_in_switch_inside_loop(self):
        source = """
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 5; i++) {
                switch (i & 1) {
                    case 0: total += 10; break;
                    default: total += 1;
                }
            }
            print_int(total);
            return 0;
        }
        """
        assert out(source) == "32"

    def test_continue_in_switch_targets_loop(self):
        source = """
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 6; i++) {
                switch (i & 1) {
                    case 1: continue;
                }
                total += i;
            }
            print_int(total);
            return 0;
        }
        """
        assert out(source) == "6"

    def test_duplicate_case_rejected(self):
        with pytest.raises(CompileError, match="duplicate case"):
            out("int main() { switch (1) { case 2: case 2: break; } "
                "return 0; }")

    def test_multiple_defaults_rejected(self):
        with pytest.raises(CompileError, match="multiple default"):
            out("int main() { switch (1) { default: default: break; } "
                "return 0; }")

    def test_float_condition_rejected(self):
        with pytest.raises(CompileError, match="integer"):
            out("int main() { float f = 0.0; switch (f) { case 1: break; } "
                "return 0; }")
