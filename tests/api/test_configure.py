"""configure(), the result wrappers, and the profiling CLI surface."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.obs import set_recorder
from repro.runner import ExperimentConfig, reset_default_runner

BUDGET = 1_200


@pytest.fixture(autouse=True)
def _isolated_session(tmp_path, monkeypatch):
    """Each test gets its own default runner, cache and recorder."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-cache"))
    reset_default_runner()
    previous = set_recorder(None)
    yield
    set_recorder(previous)
    reset_default_runner()


def _config(**kwargs) -> ExperimentConfig:
    kwargs.setdefault("workloads", ("com",))
    kwargs.setdefault("max_instructions", BUDGET)
    return ExperimentConfig(**kwargs)


class TestConfigure:
    def test_returns_and_installs_the_runner(self):
        from repro.runner import default_runner

        runner = api.configure(observe=True)
        assert default_runner() is runner
        assert runner.obs.enabled

    def test_cache_dir_builds_both_tiers(self, tmp_path):
        runner = api.configure(cache_dir=tmp_path / "mine")
        assert runner.store.root == tmp_path / "mine"
        assert runner.trace_store.root == tmp_path / "mine"

    def test_cache_dir_none_disables_caching(self):
        runner = api.configure(cache_dir=None)
        assert runner.store is None and runner.trace_store is None

    def test_unspecified_settings_are_inherited(self, tmp_path):
        api.configure(cache_dir=tmp_path / "mine", jobs=3)
        runner = api.configure(observe=True)
        assert runner.store.root == tmp_path / "mine"
        assert runner.jobs == 3
        assert runner.obs.enabled

    def test_accepts_obs_config(self, tmp_path):
        events = tmp_path / "events.jsonl"
        runner = api.configure(
            observe=api.ObsConfig(events_path=str(events))
        )
        runner.run(_config())
        assert events.exists()


class TestResultsCarryProfiles:
    def test_run_workload_profile(self):
        api.configure(observe=True)
        result = api.run_workload("com", _config())
        assert result.profile is not None
        assert "runner.resolve.computed" in result.profile["counters"]

    def test_run_suite_result_is_a_dict_with_extras(self):
        api.configure(observe=True)
        results = api.run_suite(_config())
        assert isinstance(results, dict)
        assert list(results) == ["com"]
        assert results.metrics.count("computed") == 1
        assert results.profile["counters"]["sim.instructions"] == BUDGET

    def test_run_sweep_result_is_a_list_with_extras(self):
        api.configure(observe=True)
        sweep = api.run_sweep([_config(), _config(predictors=("last",))])
        assert isinstance(sweep, list) and len(sweep) == 2
        assert all(list(entry) == ["com"] for entry in sweep)
        assert sweep.profile["counters"]["sim.traces"] == 1
        assert sweep[0].profile is sweep.profile

    def test_profiles_absent_when_not_observing(self):
        results = api.run_suite(_config())
        assert results.profile is None
        assert api.run_sweep([_config()]).profile is None


class TestProfilingCli:
    def _run(self, main, cache, *extra):
        return main([
            "run", "--workloads", "com", "--max-instructions", str(BUDGET),
            "--jobs", "1", "--cache-dir", str(cache), *extra,
        ])

    def test_run_profile_prints_and_persists(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert self._run(main, cache, "--profile") == 0
        out = capsys.readouterr().out
        assert "runner.run" in out and "sim.instructions" in out
        payload = json.loads((cache / "metrics.json").read_text())
        counters = payload["profile"]["counters"]
        assert counters["runner.resolve.computed"] == 1
        assert counters["sim.instructions"] == BUDGET
        # Spans cover the whole pipeline.
        names = set()

        def walk(spans):
            for span in spans:
                names.add(span["name"])
                walk(span["children"])

        walk(payload["profile"]["spans"])
        assert {"runner.run", "simulate", "analyze",
                "trace.encode", "store.result.put"} <= names

    def test_run_without_profile_stays_clean(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert self._run(main, cache) == 0
        assert "sim.instructions" not in capsys.readouterr().out
        payload = json.loads((cache / "metrics.json").read_text())
        assert "profile" not in payload

    def test_stats_renders_formats(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert self._run(main, cache, "--profile") == 0
        capsys.readouterr()

        assert main(["stats", "--cache-dir", str(cache)]) == 0
        assert "sim.instructions" in capsys.readouterr().out

        assert main(["stats", "--cache-dir", str(cache),
                     "--format", "prom"]) == 0
        assert "repro_sim_instructions_total" in capsys.readouterr().out

        assert main(["stats", "--cache-dir", str(cache),
                     "--format", "jsonl"]) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.strip().splitlines()]
        assert events[0] == {"type": "meta", "version": 1}

    def test_stats_without_profile_explains(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert self._run(main, cache) == 0
        capsys.readouterr()
        assert main(["stats", "--cache-dir", str(cache)]) == 1
        assert "--profile" in capsys.readouterr().err

    def test_cache_info_reports_occupancy_and_hit_rates(
            self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert self._run(main, cache, "--profile") == 0
        assert self._run(main, cache, "--profile") == 0  # warm: hits
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "% full" in out
        assert "hit-rate: 100%" in out

    def test_cache_prune_evicts_to_cap(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert self._run(main, cache, "--profile") == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "evicted 0 cached result(s)" in out  # within cap: no-op

    def test_deprecated_runner_cli_has_no_profile_flag(self):
        from repro.runner.__main__ import _build_parser

        with pytest.raises(SystemExit):
            _build_parser().parse_args(["--profile"])
