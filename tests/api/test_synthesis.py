"""The facade's synthesis entry points: generate() / run_campaign()."""

from __future__ import annotations

import pytest

from repro import api
from repro.runner import reset_default_runner

_SPEC = {
    "name": "facade",
    "max_instructions": 20_000,
    "workloads": ["gen:loopy@1", "gen:arith@2"],
    "variants": [
        {"name": "baseline", "predictors": ["last"]},
        {"name": "pair", "predictors": ["last", "stride"]},
    ],
}


@pytest.fixture(autouse=True)
def fresh_runner():
    reset_default_runner()
    yield
    reset_default_runner()


class TestGenerate:
    def test_full_name(self):
        workload = api.generate("gen:graph-walk@7")
        assert workload.name == "gen:graph-walk@7"
        assert workload.preset == "graph-walk"

    def test_parts_and_overrides(self):
        workload = api.generate("graph-walk", 7, imm_mix=6)
        assert workload.name == "gen:graph-walk@7:imm_mix=6"
        assert workload.knobs.imm_mix == 6

    def test_both_shapes_agree(self):
        assert api.generate("loopy", 3) is api.generate("gen:loopy@3")

    def test_name_and_parts_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            api.generate("gen:loopy@3", 3)

    def test_missing_seed(self):
        with pytest.raises(ValueError, match="seed"):
            api.generate("loopy")

    def test_runs_through_the_facade(self, tmp_path):
        api.configure(cache_dir=tmp_path)
        workload = api.generate("loopy", 5)
        result = api.run_workload(
            workload.name,
            api.ExperimentConfig(max_instructions=20_000),
        )
        assert result.nodes > 0


class TestRunCampaign:
    def test_dict_spec_with_report(self, tmp_path):
        api.configure(cache_dir=tmp_path / "cache")
        out = tmp_path / "report"
        campaign = api.run_campaign(_SPEC, report_dir=out)
        assert campaign.spec.name == "facade"
        assert sum(campaign.resolve_counts.values()) == 4
        assert (out / "index.md").is_file()
        assert (out / "campaign.json").is_file()

    def test_path_spec(self, tmp_path):
        import json

        api.configure(cache_dir=tmp_path / "cache")
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_SPEC))
        campaign = api.run_campaign(path)
        assert campaign.spec.jobs() == 4

    def test_warm_re_run(self, tmp_path):
        api.configure(cache_dir=tmp_path / "cache")
        api.run_campaign(_SPEC)
        # Fresh runner over the same store: everything from disk.
        api.configure(cache_dir=tmp_path / "cache")
        warm = api.run_campaign(_SPEC)
        assert warm.fully_warm
        assert warm.pool_jobs == 0

    def test_bad_spec_type(self):
        with pytest.raises(ValueError, match="CampaignSpec"):
            api.run_campaign(42)
