"""The repro.api facade, the unified CLI and the deprecation shims."""

import json

import pytest

from repro import api
from repro.core.export import result_to_dict
from repro.runner import ExperimentConfig
from repro.runner.api import _analyze


def _dump(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestFacadeSurface:
    def test_public_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_configs_are_reexported(self):
        from repro.core import AnalysisConfig

        assert api.ExperimentConfig is ExperimentConfig
        assert api.AnalysisConfig is AnalysisConfig


class TestFacadeExecution:
    def test_run_workload_memo_identity(self):
        config = ExperimentConfig(max_instructions=1_500)
        first = api.run_workload("com", config)
        assert api.run_workload("com", config) is first

    def test_run_suite(self):
        config = ExperimentConfig(
            max_instructions=1_500, workloads=("go", "com")
        )
        results = api.run_suite(config)
        assert list(results) == ["go", "com"]

    def test_run_sweep_matches_independent(self):
        configs = [
            ExperimentConfig(max_instructions=1_500, workloads=("com",)),
            ExperimentConfig(max_instructions=1_500, workloads=("com",),
                             predictors=("last",)),
        ]
        sweep = api.run_sweep(configs)
        assert len(sweep) == 2
        for config, results in zip(configs, sweep):
            assert _dump(results["com"]) == _dump(_analyze("com", config))

    def test_analyze_accepts_source_program_and_machine(self):
        from repro import Machine, compile_program

        source = "int main() { int i; for (i = 0; i < 5; i = i + 1) "\
                 "{ print_int(i); } return 0; }"
        from_source = api.analyze(source, name="mine")
        program = compile_program(source)
        from_program = api.analyze(program, name="mine")
        from_machine = api.analyze(Machine(program), name="mine")
        assert _dump(from_source) == _dump(from_program)
        assert _dump(from_source) == _dump(from_machine)


class TestDeprecatedPaths:
    def test_report_experiments_run_workload_warns(self):
        from repro.report import experiments

        config = ExperimentConfig(max_instructions=1_500)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            result = experiments.run_workload("com", config)
        assert result is api.run_workload("com", config)

    def test_report_experiments_run_suite_warns(self):
        from repro.report import experiments

        config = ExperimentConfig(
            max_instructions=1_500, workloads=("com",)
        )
        with pytest.warns(DeprecationWarning, match="repro.api"):
            results = experiments.run_suite(config)
        assert list(results) == ["com"]

    def test_old_module_entry_points_warn_and_forward(self, capsys):
        from repro.workloads.__main__ import main as workloads_main

        with pytest.warns(DeprecationWarning, match="python -m repro"):
            assert workloads_main(["--list"]) == 0
        assert "spec" in capsys.readouterr().out


class TestUnifiedCli:
    def test_workloads_list(self, capsys):
        from repro.cli import main

        assert main(["workloads", "--list"]) == 0
        out = capsys.readouterr().out
        assert "com" in out and "swm" in out

    def test_run_then_cache_info_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert main([
            "run", "--workloads", "com", "--max-instructions", "1000",
            "--jobs", "1", "--cache-dir", str(cache),
        ]) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "traces: 1" in out

        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 cached result(s)" in out
        assert "removed 1 stored trace(s)" in out

    def test_second_run_hits_result_store(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["run", "--workloads", "com", "--max-instructions", "1000",
                "--jobs", "1", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache-hit" in out and "0 computed" in out

    def test_report_exhibit(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "report", "--exhibit", "table1", "--workloads", "com",
            "--max-instructions", "1000", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        assert "Table 1" in capsys.readouterr().out
