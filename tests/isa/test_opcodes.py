"""Tests for the opcode table."""

import pytest

from repro.isa import Category, OPCODES, opcode_spec
from repro.isa.opcodes import Format


class TestOpcodeTable:
    def test_all_specs_consistent(self):
        for name, spec in OPCODES.items():
            assert spec.name == name

    def test_categories(self):
        assert opcode_spec("addu").category is Category.ALU
        assert opcode_spec("lw").category is Category.LOAD
        assert opcode_spec("sw").category is Category.STORE
        assert opcode_spec("beq").category is Category.BRANCH
        assert opcode_spec("j").category is Category.JUMP
        assert opcode_spec("jal").category is Category.CALL
        assert opcode_spec("jr").category is Category.JUMP_REG
        assert opcode_spec("syscall").category is Category.SYSCALL
        assert opcode_spec("nop").category is Category.NOP

    def test_stores_write_no_dest(self):
        for name in ("sw", "sb", "sh", "s.d"):
            assert not opcode_spec(name).writes_dest

    def test_loads_write_dest(self):
        for name in ("lw", "lb", "lbu", "lh", "lhu", "l.d"):
            assert opcode_spec(name).writes_dest

    def test_immediate_ops_flagged(self):
        for name in ("addiu", "andi", "sll", "lui", "lw", "sw"):
            assert opcode_spec(name).uses_imm
        for name in ("addu", "and", "sllv", "beq", "jr"):
            assert not opcode_spec(name).uses_imm

    def test_unknown_opcode(self):
        with pytest.raises(KeyError):
            opcode_spec("bogus")

    def test_fp_formats(self):
        assert opcode_spec("add.d").fmt is Format.FRRR
        assert opcode_spec("neg.d").fmt is Format.FRR
        assert opcode_spec("fslt").fmt is Format.FCMP
        assert opcode_spec("itof").fmt is Format.ITOF
        assert opcode_spec("ftoi").fmt is Format.FTOI
        assert opcode_spec("l.d").fmt is Format.FMEM

    def test_branch_coverage(self):
        branches = [
            name for name, spec in OPCODES.items()
            if spec.category is Category.BRANCH
        ]
        assert sorted(branches) == [
            "beq", "bgez", "bgtz", "blez", "bltz", "bne",
        ]
