"""Tests for register naming and numbering."""

import pytest

from repro.isa import (
    FP_REG_BASE,
    NUM_REGS,
    REG_RA,
    REG_SP,
    REG_ZERO,
    fp_reg,
    is_fp_reg,
    register_name,
    register_number,
)


class TestRegisterNumber:
    def test_symbolic_names(self):
        assert register_number("$zero") == REG_ZERO
        assert register_number("$sp") == REG_SP
        assert register_number("$ra") == REG_RA
        assert register_number("$t0") == 8
        assert register_number("$s0") == 16

    def test_numeric_aliases(self):
        for number in range(32):
            assert register_number(f"${number}") == number

    def test_fp_registers(self):
        assert register_number("$f0") == FP_REG_BASE
        assert register_number("$f31") == FP_REG_BASE + 31

    def test_without_dollar(self):
        assert register_number("t0") == 8

    def test_invalid_raises(self):
        with pytest.raises(KeyError):
            register_number("$t99")
        with pytest.raises(KeyError):
            register_number("$f32")


class TestRegisterName:
    def test_round_trip_all(self):
        for number in range(NUM_REGS):
            assert register_number(register_name(number)) == number

    def test_fp_format(self):
        assert register_name(FP_REG_BASE + 4) == "$f4"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(NUM_REGS)
        with pytest.raises(ValueError):
            register_name(-1)


class TestFpHelpers:
    def test_is_fp_reg(self):
        assert not is_fp_reg(31)
        assert is_fp_reg(32)
        assert is_fp_reg(63)
        assert not is_fp_reg(64)

    def test_fp_reg(self):
        assert fp_reg(0) == FP_REG_BASE
        assert fp_reg(12) == FP_REG_BASE + 12
        with pytest.raises(ValueError):
            fp_reg(32)
