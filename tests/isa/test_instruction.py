"""Tests for the decoded instruction record."""

from repro.isa import Category, Instruction


class TestInstruction:
    def test_sources_in_operand_order(self):
        instr = Instruction("addu", dest=8, src1=9, src2=10)
        assert instr.sources() == (9, 10)

    def test_sources_single(self):
        instr = Instruction("jr", src1=31)
        assert instr.sources() == (31,)

    def test_sources_empty(self):
        assert Instruction("nop").sources() == ()

    def test_spec_and_category(self):
        instr = Instruction("lw", dest=8, src1=29, imm=4)
        assert instr.category is Category.LOAD
        assert instr.spec.uses_imm

    def test_render_alu(self):
        instr = Instruction("addu", dest=8, src1=9, src2=10)
        assert instr.render() == "addu $t0, $t1, $t2"

    def test_render_load_store(self):
        load = Instruction("lw", dest=8, src1=29, imm=4)
        assert load.render() == "lw $t0, 4($sp)"
        store = Instruction("sw", src1=29, src2=8, imm=-8)
        assert store.render() == "sw $t0, -8($sp)"

    def test_render_branch_with_target(self):
        instr = Instruction("beq", src1=8, src2=0, target=7)
        assert instr.render() == "beq $t0, $zero, @7"

    def test_render_immediate(self):
        instr = Instruction("addiu", dest=8, src1=9, imm=-5)
        assert instr.render() == "addiu $t0, $t1, -5"

    def test_render_bare(self):
        assert Instruction("halt").render() == "halt"

    def test_equality_ignores_text(self):
        a = Instruction("addu", dest=8, src1=9, src2=10, text="one")
        b = Instruction("addu", dest=8, src1=9, src2=10, text="two")
        assert a == b

    def test_frozen(self):
        import pytest
        from dataclasses import FrozenInstanceError

        instr = Instruction("nop")
        with pytest.raises(FrozenInstanceError):
            instr.op = "halt"
