"""Property tests: trace serialisation round-trips arbitrary records."""

from hypothesis import given, settings, strategies as st

from repro.cpu.tracefile import load_trace, save_trace
from repro.cpu.trace import DynInst, Source
from repro.isa.opcodes import Category

_values = st.one_of(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
)


@st.composite
def dyn_insts(draw):
    uid = draw(st.integers(min_value=0, max_value=10**6))
    n_srcs = draw(st.integers(min_value=0, max_value=3))
    srcs = []
    for __ in range(n_srcs):
        producer = draw(st.one_of(st.none(),
                                  st.integers(min_value=0, max_value=uid)))
        srcs.append(Source(
            value=draw(_values),
            producer=producer,
            producer_pc=None if producer is None else draw(
                st.integers(min_value=0, max_value=5000)
            ),
            is_mem=draw(st.booleans()),
            loc=draw(st.integers(min_value=0, max_value=2**32)),
        ))
    category = draw(st.sampled_from(list(Category)))
    return DynInst(
        uid=uid,
        pc=draw(st.integers(min_value=0, max_value=5000)),
        op=draw(st.sampled_from(["addu", "lw", "beq", "mul.d"])),
        category=category,
        has_imm=draw(st.booleans()),
        srcs=tuple(srcs),
        out=draw(st.one_of(st.none(), _values)),
        passthrough=draw(st.one_of(
            st.none(),
            st.integers(min_value=0, max_value=max(n_srcs - 1, 0)),
        )) if n_srcs else None,
        taken=draw(st.one_of(st.none(), st.booleans())),
        target=draw(st.one_of(st.none(),
                              st.integers(min_value=0, max_value=5000))),
    )


@given(st.lists(dyn_insts(), max_size=30))
@settings(max_examples=40, deadline=None)
def test_round_trip_arbitrary_records(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("traces") / "t.trace"
    count = save_trace(iter(records), path, n_static=5001)
    assert count == len(records)
    loaded = list(load_trace(path))
    assert loaded == records
