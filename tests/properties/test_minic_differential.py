"""Differential testing: mini-C arithmetic vs a Python reference.

Random expression trees are compiled, run on the simulator, and the
printed result is compared with a Python evaluator implementing C's
32-bit two's-complement semantics.  This exercises the whole stack —
lexer, parser, sema, codegen (including immediate folding and constant
promotion), assembler and machine — against an independent oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.layout import to_signed, to_unsigned

from tests.conftest import run_minic


class Node:
    """Reference expression: op applied to children or a literal."""

    def __init__(self, op, children=(), value=None):
        self.op = op
        self.children = children
        self.value = value

    def to_c(self) -> str:
        if self.op == "lit":
            return str(self.value)
        if self.op == "var":
            return self.value
        if len(self.children) == 1:
            # The space avoids max-munch artifacts like `--1`.
            return f"({self.op} {self.children[0].to_c()})"
        lhs, rhs = self.children
        return f"({lhs.to_c()} {self.op} {rhs.to_c()})"

    def evaluate(self, env) -> int:
        if self.op == "lit":
            return to_unsigned(self.value)
        if self.op == "var":
            return env[self.value]
        if len(self.children) == 1:
            value = self.children[0].evaluate(env)
            if self.op == "-":
                return to_unsigned(-to_signed(value))
            if self.op == "~":
                return to_unsigned(~value)
            return to_unsigned(int(value == 0))  # !
        a = self.children[0].evaluate(env)
        b = self.children[1].evaluate(env)
        sa, sb = to_signed(a), to_signed(b)
        op = self.op
        if op == "+":
            return to_unsigned(sa + sb)
        if op == "-":
            return to_unsigned(sa - sb)
        if op == "*":
            return to_unsigned(sa * sb)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return to_unsigned(a << (b & 31))
        if op == ">>":
            return to_unsigned(sa >> (b & 31))
        if op == "<":
            return int(sa < sb)
        if op == ">":
            return int(sa > sb)
        if op == "<=":
            return int(sa <= sb)
        if op == ">=":
            return int(sa >= sb)
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        raise AssertionError(op)


_VARS = {"va": 13, "vb": -7, "vc": 1000003, "vd": 0}

_literals = st.integers(min_value=-(2**31), max_value=2**31 - 1)
_small_shift = st.integers(min_value=0, max_value=31)


def _leaf():
    return st.one_of(
        st.builds(lambda v: Node("lit", value=v), _literals),
        st.builds(lambda n: Node("var", value=n),
                  st.sampled_from(sorted(_VARS))),
    )


def _exprs():
    binary_ops = st.sampled_from(
        ["+", "-", "*", "&", "|", "^", "<", ">", "<=", ">=", "==", "!="]
    )
    unary_ops = st.sampled_from(["-", "~", "!"])
    return st.recursive(
        _leaf(),
        lambda children: st.one_of(
            st.builds(lambda op, a, b: Node(op, (a, b)),
                      binary_ops, children, children),
            st.builds(lambda op, a: Node(op, (a,)), unary_ops, children),
            st.builds(lambda a, s: Node("<<", (a, Node("lit", value=s))),
                      children, _small_shift),
            st.builds(lambda a, s: Node(">>", (a, Node("lit", value=s))),
                      children, _small_shift),
        ),
        max_leaves=12,
    )


@given(_exprs())
@settings(max_examples=60, deadline=None)
def test_expression_matches_reference(expr):
    expected = to_signed(expr.evaluate(_VARS))
    decls = " ".join(
        f"int {name} = {value};" for name, value in _VARS.items()
    )
    source = (
        f"int main() {{ {decls} "
        f"print_int({expr.to_c()}); return 0; }}"
    )
    assert run_minic(source) == str(expected)


@given(st.lists(_literals, min_size=1, max_size=12))
@settings(max_examples=30, deadline=None)
def test_array_sum_matches_reference(values):
    stores = " ".join(
        f"data[{index}] = {value};" for index, value in enumerate(values)
    )
    source = (
        f"int data[16]; int main() {{ {stores} int i; int total = 0; "
        f"for (i = 0; i < {len(values)}; i++) total += data[i]; "
        f"print_int(total); return 0; }}"
    )
    expected = 0
    for value in values:
        expected = to_signed(to_unsigned(expected + value))
    assert run_minic(source) == str(expected)


@given(st.lists(_literals, min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_input_echo_round_trip(values):
    source = (
        "int main() { int i; "
        "for (i = 0; i < input_count(); i++) { "
        "print_int(input_word(i)); print_char(' '); } return 0; }"
    )
    output = run_minic(source, input_words=values)
    expected = " ".join(str(to_signed(to_unsigned(v))) for v in values)
    assert output.strip() == expected


@st.composite
def switch_specs(draw):
    """(case values, results, default result, probe values)."""
    values = draw(st.lists(
        st.integers(min_value=-20, max_value=60),
        min_size=1, max_size=8, unique=True,
    ))
    results = draw(st.lists(
        st.integers(min_value=-1000, max_value=1000),
        min_size=len(values), max_size=len(values),
    ))
    default = draw(st.integers(min_value=-1000, max_value=1000))
    probes = draw(st.lists(
        st.integers(min_value=-25, max_value=65),
        min_size=1, max_size=6,
    ))
    return values, results, default, probes


@given(switch_specs())
@settings(max_examples=30, deadline=None)
def test_switch_matches_if_chain(spec):
    """A switch (jump table or compare chain) must behave exactly like
    the equivalent if/else chain."""
    values, results, default, probes = spec
    cases = " ".join(
        f"case {value}: return {result};"
        for value, result in zip(values, results)
    )
    chain = " else ".join(
        f"if (x == {value}) return {result};"
        for value, result in zip(values, results)
    )
    source = (
        f"int via_switch(int x) {{ switch (x) {{ {cases} "
        f"default: return {default}; }} }}\n"
        f"int via_chain(int x) {{ {chain} return {default}; }}\n"
        "int main() { int i; "
        "for (i = 0; i < input_count(); i++) { "
        "int x = input_word(i); "
        "print_int(via_switch(x)); print_char(' '); "
        "print_int(via_chain(x)); print_char(' '); } return 0; }"
    )
    output = run_minic(source, input_words=[p & 0xFFFFFFFF for p in probes])
    numbers = output.split()
    assert len(numbers) == 2 * len(probes)
    mapping = dict(zip(values, results))
    for index, probe in enumerate(probes):
        expected = str(mapping.get(probe, default))
        assert numbers[2 * index] == expected
        assert numbers[2 * index + 1] == expected
