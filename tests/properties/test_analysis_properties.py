"""Property tests for the analysis engine on random programs.

Random (but well-formed) straight-line/loop assembly programs are
generated, executed and analysed.  The core invariants must hold for
every program, and the streaming analyzer must agree exactly with the
independent explicit-graph implementation.
"""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core import (
    AnalysisConfig,
    Behavior,
    analyze_machine,
    behavior_counts,
    build_dpg,
)
from repro.cpu import Machine

_REGS = ["$t0", "$t1", "$t2", "$s0", "$s1"]
_ALU3 = ["addu", "subu", "and", "or", "xor", "mul"]
_ALU_IMM = ["addiu", "andi", "ori", "xori"]


@st.composite
def random_programs(draw):
    """A random loop over random ALU/memory instructions."""
    body = []
    length = draw(st.integers(min_value=1, max_value=12))
    for __ in range(length):
        choice = draw(st.integers(min_value=0, max_value=3))
        dest = draw(st.sampled_from(_REGS))
        src1 = draw(st.sampled_from(_REGS))
        if choice == 0:
            op = draw(st.sampled_from(_ALU3))
            src2 = draw(st.sampled_from(_REGS))
            body.append(f"{op} {dest}, {src1}, {src2}")
        elif choice == 1:
            op = draw(st.sampled_from(_ALU_IMM))
            imm = draw(st.integers(min_value=0, max_value=255))
            body.append(f"{op} {dest}, {src1}, {imm}")
        elif choice == 2:
            slot = draw(st.integers(min_value=0, max_value=7))
            body.append(f"sw {src1}, {4 * slot}($s7)")
        else:
            slot = draw(st.integers(min_value=0, max_value=7))
            body.append(f"lw {dest}, {4 * slot}($s7)")
    iterations = draw(st.integers(min_value=1, max_value=12))
    lines = [
        "        .data",
        "buf:    .space 32",
        "        .text",
        "__start:",
        "        la $s7, buf",
        f"        li $s6, {iterations}",
        "        li $s5, 0",
        "loop:",
    ]
    lines.extend(f"        {instr}" for instr in body)
    lines.extend([
        "        addiu $s5, $s5, 1",
        "        slt $at, $s5, $s6",
        "        bne $at, $zero, loop",
        "        halt",
    ])
    return "\n".join(lines)


@given(random_programs())
@settings(max_examples=30, deadline=None)
def test_streaming_invariants(source):
    program = assemble(source)
    result = analyze_machine(Machine(program), "random")
    assert result.nodes > 0
    for pred in result.predictors.values():
        # Node and arc totals are conserved.
        assert pred.nodes.total() == result.nodes
        assert pred.arcs.total() == result.arcs
        # Behaviours partition the nodes.
        assert sum(pred.nodes.behavior_counts().values()) == result.nodes
        # Sequences cannot cover more instructions than exist.
        assert pred.sequences.instructions_in_runs() <= result.nodes
        # Path propagation cannot exceed the DPG size.
        assert pred.paths.propagate_elements <= result.elements
        arc_behaviors = pred.arcs.behavior_counts()
        node_behaviors = pred.nodes.behavior_counts()
        propagate_elements = (
            arc_behaviors.get(Behavior.PROPAGATE, 0)
            + node_behaviors.get(Behavior.PROPAGATE, 0)
        )
        assert pred.paths.propagate_elements == propagate_elements
    assert result.d_arcs <= result.arcs


@given(random_programs(),
       st.sampled_from(["last", "stride", "context"]))
@settings(max_examples=25, deadline=None)
def test_streaming_matches_explicit_graph(source, kind):
    program = assemble(source)
    graph = build_dpg(Machine(program).trace(), predictor=kind)
    graph_nodes, graph_arcs = behavior_counts(graph)

    config = AnalysisConfig(predictors=(kind,), trees_for=())
    result = analyze_machine(Machine(program), "random", config)
    pred = result.predictors[kind]
    stream_nodes = pred.nodes.behavior_counts()
    stream_arcs = pred.arcs.behavior_counts()
    for behavior in Behavior:
        assert graph_nodes.get(behavior, 0) == stream_nodes.get(
            behavior, 0
        ), behavior
        if behavior is not Behavior.OTHER:
            assert graph_arcs.get(behavior, 0) == stream_arcs.get(
                behavior, 0
            ), behavior


@given(random_programs())
@settings(max_examples=15, deadline=None)
def test_tree_histograms_consistent(source):
    program = assemble(source)
    config = AnalysisConfig(predictors=("context",),
                            trees_for=("context",))
    result = analyze_machine(Machine(program), "random", config)
    trees = result.predictors["context"].trees
    paths = result.predictors["context"].paths
    # Every propagate element appears once in the influence histogram
    # and once in the distance histogram.
    assert trees.total_propagates() == paths.propagate_elements
    assert sum(trees.distance_hist.values()) == paths.propagate_elements
    # Aggregate propagation counts each (element, influencing gen) pair,
    # so with capped sets it cannot exceed elements x generates.
    if trees.truncated == 0:
        per_element = sum(
            count * size for size, count in trees.influence_hist.items()
        )
        assert trees.aggregate_propagation() == per_element
