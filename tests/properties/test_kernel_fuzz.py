"""Differential fuzzing: columnar kernel vs reference analyzer.

Seeded ``gen:`` workloads give unbounded, reproducible program
diversity; each seed also derives a random predictor-bank/analysis
variant, so the pair (program, config) sweeps the kernel's input space
far beyond the fixed suite.  The invariant is total: serialized
results must match byte for byte.

The fast tier runs a small seed set on every test run; the ``slow``
marked sweep covers 200 seeds for release-grade confidence
(``pytest -m slow tests/properties/test_kernel_fuzz.py``).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import AnalysisConfig, analyze_trace
from repro.core.export import result_to_dict
from repro.gen import PRESETS, generated_workload

FAST_SEEDS = 10
SLOW_SEEDS = 200

#: Kept small: the point is breadth of (program, config) pairs, not
#: trace length.
BUDGET = 1_500

_SPEC_POOL = (
    "last",
    "stride",
    "context",
    "hybrid",
    "last(bits=6,hysteresis=1)",
    "stride(bits=7)",
    "context(l1=7,l2=9,order=3)",
    "hybrid(bits=7,l2=9)",
)


def _variant_for(seed: int) -> AnalysisConfig:
    """A reproducible analysis-config variant derived from ``seed``."""
    rng = random.Random(0xC0DE ^ seed)
    predictors = tuple(
        rng.sample(_SPEC_POOL, rng.randint(1, 4))
    )
    trees_for = tuple(
        spec for spec in predictors if rng.random() < 0.4
    )
    return AnalysisConfig(
        predictors=predictors,
        trees_for=trees_for,
        gen_cap=rng.choice((2, 8, 64)),
        branch_predictor=rng.choice(("gshare", "local")),
        gshare_bits=rng.choice((8, 12, 16)),
        track_sequences=rng.random() < 0.9,
        track_branches=rng.random() < 0.9,
        track_unpred=rng.random() < 0.9,
        track_paths=rng.random() < 0.9,
        max_instructions=rng.choice((200, BUDGET)),
    )


def _check_seed(seed: int) -> None:
    presets = sorted(PRESETS)
    preset = presets[seed % len(presets)]
    machine = generated_workload(f"gen:{preset}@{seed}").machine()
    records = list(machine.trace())
    n_static = len(machine.program.instructions)
    config = _variant_for(seed)
    reference = analyze_trace(records, n_static, name=preset,
                              config=config, engine="reference")
    columnar = analyze_trace(records, n_static, name=preset,
                             config=config, engine="columnar")
    assert (json.dumps(result_to_dict(columnar))
            == json.dumps(result_to_dict(reference))), (
        f"engines diverge for gen:{preset}@{seed} with {config}"
    )
    # Segment-parallel kernel: same seed, same config, a seed-derived
    # segment count -- the split point sweeps the trace as seeds vary,
    # so loop bodies, producer/consumer arcs and gshare histories all
    # get cut mid-flight somewhere in the sweep (docs/sharding.md).
    segments = 2 + seed % 4
    segmented = analyze_trace(records, n_static, name=preset,
                              config=config, engine="columnar",
                              segments=segments)
    assert (json.dumps(result_to_dict(segmented))
            == json.dumps(result_to_dict(reference))), (
        f"segmented kernel diverges for gen:{preset}@{seed} "
        f"with segments={segments} and {config}"
    )


@pytest.mark.parametrize("seed", range(FAST_SEEDS))
def test_differential_fast(seed):
    _check_seed(seed)


@pytest.mark.slow
def test_differential_sweep():
    for seed in range(FAST_SEEDS, SLOW_SEEDS):
        _check_seed(seed)
