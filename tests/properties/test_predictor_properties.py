"""Property tests for the predictor suite."""

from hypothesis import given, settings, strategies as st

from repro.predictors import GsharePredictor, make_predictor

values = st.one_of(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
keys = st.integers(min_value=0, max_value=2**40)
kinds = st.sampled_from(["last", "stride", "context"])


class TestRobustness:
    @given(kinds, st.lists(st.tuples(keys, values), max_size=200))
    @settings(max_examples=50)
    def test_never_crashes_and_returns_bool(self, kind, stream):
        predictor = make_predictor(kind)
        for key, value in stream:
            assert make_predictor  # keep hypothesis happy about reuse
            result = predictor.see(key, value)
            assert isinstance(result, bool) or result in (0, 1)

    @given(kinds, keys, st.lists(values, min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_peek_predicts_what_see_checks(self, kind, key, stream):
        predictor = make_predictor(kind)
        for value in stream:
            predicted = predictor.peek(key)
            correct = predictor.see(key, value)
            if predicted is None:
                assert not correct
            else:
                assert correct == (predicted == value)

    @given(kinds, st.lists(st.tuples(keys, values), max_size=100))
    @settings(max_examples=30)
    def test_determinism(self, kind, stream):
        first = [make_predictor(kind).see(k, v) for k, v in stream]
        second = [make_predictor(kind).see(k, v) for k, v in stream]
        assert first == second


class TestConvergence:
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-100, max_value=100))
    @settings(max_examples=30)
    def test_stride_locks_onto_any_progression(self, start, stride):
        predictor = make_predictor("stride")
        sequence = [(start + i * stride) & 0xFFFFFFFF for i in range(20)]
        hits = [predictor.see(7, value) for value in sequence]
        assert all(hits[3:])

    @given(values)
    @settings(max_examples=30)
    def test_last_value_locks_onto_constant(self, value):
        predictor = make_predictor("last")
        hits = [predictor.see(3, value) for __ in range(6)]
        assert all(hits[1:])

    @given(st.lists(st.integers(min_value=0, max_value=255),
                    min_size=2, max_size=6, unique=True))
    @settings(max_examples=30)
    def test_context_locks_onto_repeating_pattern(self, pattern):
        # The second-level table is shared (see context.py): two pattern
        # positions whose context signatures collide thrash one entry
        # and one of them mispredicts forever — deliberate destructive
        # interference, e.g. pattern [178, 119, 180, 183].  A colliding
        # position costs its whole 1/len(pattern) share of the tail, so
        # assert steady state for the non-colliding majority only.
        predictor = make_predictor("context")
        hits = []
        for __ in range(40):
            for value in pattern:
                hits.append(predictor.see(9, value))
        tail = hits[-4 * len(pattern):]
        assert sum(tail) >= len(tail) // 2


class TestGshareProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**20),
                              st.booleans()), max_size=300))
    @settings(max_examples=30)
    def test_gshare_never_crashes(self, stream):
        predictor = GsharePredictor()
        for pc, taken in stream:
            assert predictor.see(pc, taken) in (True, False)

    @given(st.booleans())
    def test_constant_direction_learned(self, direction):
        predictor = GsharePredictor(index_bits=8)
        hits = [predictor.see(5, direction) for __ in range(40)]
        assert all(hits[12:])
