"""Property tests for the ALU's 32-bit semantics."""

from hypothesis import given, strategies as st

from repro.cpu.alu import ALU_FUNCS, BRANCH_FUNCS
from repro.isa.layout import WORD_MASK, to_signed, to_unsigned

words = st.integers(min_value=0, max_value=WORD_MASK)
shifts = st.integers(min_value=0, max_value=31)


class TestSignConversion:
    @given(words)
    def test_round_trip(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_round_trip(self, value):
        assert to_signed(to_unsigned(value)) == value

    @given(words)
    def test_signed_range(self, value):
        assert -(2**31) <= to_signed(value) < 2**31


class TestArithmetic:
    @given(words, words)
    def test_results_stay_in_word_range(self, a, b):
        for op in ("add", "addu", "sub", "subu", "and", "or", "xor",
                   "nor", "mul", "slt", "sltu"):
            result = ALU_FUNCS[op](a, b)
            assert 0 <= result <= WORD_MASK, op

    @given(words, words)
    def test_add_matches_modular_arithmetic(self, a, b):
        assert ALU_FUNCS["addu"](a, b) == (a + b) % 2**32

    @given(words, words)
    def test_sub_inverts_add(self, a, b):
        total = ALU_FUNCS["addu"](a, b)
        assert ALU_FUNCS["subu"](total, b) == a

    @given(words)
    def test_nor_with_zero_is_not(self, a):
        assert ALU_FUNCS["nor"](a, 0) == (~a) & WORD_MASK

    @given(words, words)
    def test_slt_matches_signed_compare(self, a, b):
        assert ALU_FUNCS["slt"](a, b) == int(to_signed(a) < to_signed(b))

    @given(words, words.filter(lambda b: b != 0))
    def test_division_identity(self, a, b):
        quotient = to_signed(ALU_FUNCS["div"](a, b))
        remainder = to_signed(ALU_FUNCS["rem"](a, b))
        sa, sb = to_signed(a), to_signed(b)
        # C semantics: truncation towards zero, remainder sign follows
        # the dividend, and the Euclidean identity holds (modulo the
        # INT_MIN/-1 overflow wrap).
        assert to_unsigned(quotient * sb + remainder) == a
        assert abs(remainder) < abs(sb)
        if remainder:
            assert (remainder < 0) == (sa < 0)

    @given(words, words.filter(lambda b: b != 0))
    def test_unsigned_division_identity(self, a, b):
        quotient = ALU_FUNCS["divu"](a, b)
        remainder = ALU_FUNCS["remu"](a, b)
        assert quotient * b + remainder == a
        assert remainder < b


class TestShifts:
    @given(words, shifts)
    def test_srl_zero_fills(self, a, s):
        assert ALU_FUNCS["srl"](a, s) == a >> s

    @given(words, shifts)
    def test_sra_sign_fills(self, a, s):
        expected = to_unsigned(to_signed(a) >> s)
        assert ALU_FUNCS["sra"](a, s) == expected

    @given(words, shifts)
    def test_sll_masks_to_word(self, a, s):
        assert ALU_FUNCS["sll"](a, s) == (a << s) & WORD_MASK

    @given(words, words)
    def test_variable_shifts_use_low_5_bits(self, a, b):
        assert ALU_FUNCS["sllv"](a, b) == ALU_FUNCS["sll"](a, b & 31)
        assert ALU_FUNCS["srlv"](a, b) == ALU_FUNCS["srl"](a, b & 31)
        assert ALU_FUNCS["srav"](a, b) == ALU_FUNCS["sra"](a, b & 31)


class TestBranches:
    @given(words)
    def test_zero_compare_partition(self, a):
        """Exactly one of <0, ==0, >0 holds, and blez/bgez agree."""
        lt = BRANCH_FUNCS["bltz"](a, 0)
        gt = BRANCH_FUNCS["bgtz"](a, 0)
        eq = a == 0
        assert lt + gt + eq == 1
        assert BRANCH_FUNCS["blez"](a, 0) == (lt or eq)
        assert BRANCH_FUNCS["bgez"](a, 0) == (gt or eq)

    @given(words, words)
    def test_beq_bne_complement(self, a, b):
        assert BRANCH_FUNCS["beq"](a, b) != BRANCH_FUNCS["bne"](a, b)
