"""The line-granular ddmin shrinker and the triage dropbox."""

from __future__ import annotations

from repro.gen import save_triage, shrink


def test_shrink_isolates_the_bad_line():
    lines = [f"int x{i} = {i};" for i in range(64)]
    lines.insert(37, "BAD LINE")
    source = "\n".join(lines)

    shrunk = shrink(source, lambda s: "BAD" in s)
    assert "BAD" in shrunk
    assert shrunk.strip() == "BAD LINE"


def test_shrink_keeps_interacting_lines():
    source = "\n".join(["alpha", "filler1", "beta", "filler2"])

    def predicate(text: str) -> bool:
        return "alpha" in text and "beta" in text

    shrunk = shrink(source, predicate)
    assert predicate(shrunk)
    assert "filler1" not in shrunk
    assert "filler2" not in shrunk


def test_shrink_rejects_a_predicate_that_does_not_hold():
    import pytest

    with pytest.raises(ValueError, match="predicate"):
        shrink("one\ntwo", lambda s: False)


def test_shrink_is_deterministic():
    source = "\n".join(f"line {i}" for i in range(40)) + "\nBAD"
    predicate = lambda s: "BAD" in s  # noqa: E731
    assert shrink(source, predicate) == shrink(source, predicate)


def test_save_triage_writes_reproducer(tmp_path):
    error = ValueError("synthetic failure")
    path = save_triage("int main() { return 0; }", error,
                       directory=tmp_path)
    assert path.parent == tmp_path
    assert path.name.startswith("minic-")
    assert path.suffix == ".mc"
    text = path.read_text()
    assert "synthetic failure" in text
    assert "int main() { return 0; }" in text


def test_save_triage_is_content_addressed(tmp_path):
    error = ValueError("boom")
    first = save_triage("source A", error, directory=tmp_path)
    again = save_triage("source A", error, directory=tmp_path)
    other = save_triage("source B", error, directory=tmp_path)
    assert first == again
    assert first != other
