"""Cross-process reproducibility: the name is the whole identity."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.gen import generated_workload
from repro.runner.job import trace_key

_SRC = str(Path(repro.__file__).resolve().parents[1])

_PROBE = (
    "import hashlib, json;"
    "from repro.gen import generated_workload;"
    "from repro.runner.job import trace_key;"
    "w = generated_workload({name!r});"
    "print(json.dumps({{"
    "'source': hashlib.sha256(w.source().encode()).hexdigest(),"
    "'source_hash': w.source_hash(),"
    "'trace_key': trace_key(w.name, 1)}}))"
)


def _probe(name: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _PROBE.format(name=name)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout)


def test_two_fresh_processes_agree():
    name = "gen:graph-walk@11:imm_mix=6"
    first = _probe(name)
    second = _probe(name)
    assert first == second
    # ... and both agree with this process.
    workload = generated_workload(name)
    assert first["source_hash"] == workload.source_hash()
    assert first["trace_key"] == trace_key(workload.name, 1)


def test_distinct_seeds_distinct_trace_keys():
    keys = {
        trace_key(generated_workload(f"gen:pointer-chase@{seed}").name, 1)
        for seed in (1, 2, 3, 4)
    }
    assert len(keys) == 4


def test_memoized_instance_identity():
    assert (generated_workload("gen:loopy@1")
            is generated_workload("gen:loopy@1"))


def test_noop_override_resolves_to_same_instance():
    from repro.gen import PRESETS

    value = PRESETS["loopy"].imm_mix
    assert (generated_workload(f"gen:loopy@1:imm_mix={value}")
            is generated_workload("gen:loopy@1"))


def test_get_workload_resolves_gen_names():
    from repro.workloads import get_workload

    workload = get_workload("gen:arith@6")
    assert workload.preset == "arith"
    assert workload.seed == 6


def test_get_workload_bad_gen_name_is_key_error():
    import pytest

    from repro.workloads import get_workload

    with pytest.raises(KeyError):
        get_workload("gen:nope@1")
