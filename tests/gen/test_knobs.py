"""Name grammar, presets and knob bounds of the generator."""

from __future__ import annotations

import dataclasses

import pytest

from repro.gen import (
    PRESETS,
    canonical_gen_name,
    knobs_for,
    parse_gen_name,
)
from repro.gen.knobs import MAX_SEED, GenKnobs


class TestParseGenName:
    def test_plain(self):
        assert parse_gen_name("gen:loopy@5") == ("loopy", 5, {})

    def test_overrides(self):
        preset, seed, overrides = parse_gen_name(
            "gen:graph-walk@12:imm_mix=6,loop_depth=3"
        )
        assert preset == "graph-walk"
        assert seed == 12
        assert overrides == {"imm_mix": 6, "loop_depth": 3}

    @pytest.mark.parametrize("bad", [
        "loopy@5",                 # no gen: prefix
        "gen:loopy",               # no seed
        "gen:loopy@",              # empty seed
        "gen:loopy@-3",            # negative seed
        "gen:loopy@5:",            # empty overrides
        "gen:loopy@5:imm_mix=",    # empty value
        "gen:loopy@5:imm_mix=6,",  # trailing comma
        "gen:Loopy@5",             # uppercase preset
        "gen:loopy@5:IMM=6",       # uppercase knob
    ])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_gen_name(bad)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            knobs_for("nope")

    def test_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown knob"):
            parse_gen_name("gen:loopy@1:bogus=1")

    def test_seed_bound(self):
        with pytest.raises(ValueError):
            canonical_gen_name("loopy", MAX_SEED + 1, {})


class TestCanonicalName:
    def test_sorted_keys(self):
        name = canonical_gen_name(
            "loopy", 3, {"stmts_per_block": 6, "imm_mix": 2}
        )
        assert name == "gen:loopy@3:imm_mix=2,stmts_per_block=6"

    def test_noop_override_dropped(self):
        loopy = PRESETS["loopy"]
        name = canonical_gen_name("loopy", 3, {"imm_mix": loopy.imm_mix})
        assert name == "gen:loopy@3"

    def test_round_trip(self):
        name = canonical_gen_name("mixed", 9, {"funcs": 1})
        assert canonical_gen_name(*parse_gen_name(name)) == name


class TestKnobs:
    def test_presets_validate(self):
        for name, knobs in PRESETS.items():
            knobs.validate()

    def test_knobs_for_applies_overrides(self):
        knobs = knobs_for("loopy", {"imm_mix": 2})
        assert knobs.imm_mix == 2
        assert knobs.loop_depth == PRESETS["loopy"].loop_depth

    def test_bounds_rejected(self):
        for field in dataclasses.fields(GenKnobs):
            bad = dataclasses.replace(GenKnobs(), **{field.name: 99})
            with pytest.raises(ValueError, match=field.name):
                bad.validate()

    def test_overrides_from(self):
        base = GenKnobs()
        same = dataclasses.replace(base)
        assert same.overrides_from(base) == {}
        bumped = dataclasses.replace(base, arrays=3)
        assert bumped.overrides_from(base) == {"arrays": 3}
