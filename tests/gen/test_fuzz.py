"""Generator-driven fuzzing of the mini-C frontend.

Two contracts:

* every generated program compiles — the emitter is correct by
  construction, so a compile failure on generator output is a bug in
  one of the two;
* a *garbled* program may fail to compile, but only ever with a
  :class:`~repro.errors.MinicError` — never a bare ``KeyError``/
  ``IndexError``/``AttributeError`` escaping the frontend.

The quick versions run in tier 1; the 1000-seed sweep is marked slow.
"""

from __future__ import annotations

import pytest

from repro.errors import MinicError
from repro.gen import PRESETS, generate_source, save_triage, shrink
from repro.minic import compile_program
from repro.workloads.inputs import Rng

_PRESETS = sorted(PRESETS)


def _knobs_for_seed(seed: int):
    return PRESETS[_PRESETS[seed % len(_PRESETS)]]


def _compile_seeds(seeds, tmp_path):
    """Compile one generated program per seed; return failures."""
    failures = []
    for seed in seeds:
        source = generate_source(_knobs_for_seed(seed), seed=seed)
        try:
            compile_program(source)
        except MinicError as error:
            # Valid-by-construction output must compile; keep the
            # reproducer (shrunk) for triage instead of just a seed.
            def still_fails(candidate: str) -> bool:
                try:
                    compile_program(candidate)
                except MinicError:
                    return True
                except Exception:
                    return False
                return False

            small = shrink(source, still_fails)
            path = save_triage(small, error, directory=tmp_path)
            failures.append((seed, error, path))
        except Exception as error:  # non-MinicError: always a bug
            failures.append((seed, error, None))
    return failures


def test_generated_programs_compile_quick(tmp_path):
    failures = _compile_seeds(range(40), tmp_path)
    assert not failures, failures[:3]


@pytest.mark.slow
def test_generated_programs_compile_1000_seeds(tmp_path):
    failures = _compile_seeds(range(1000), tmp_path)
    assert not failures, failures[:3]


def _garble(source: str, rng: Rng) -> str:
    """One deterministic mutation: delete/dup/truncate/splice."""
    lines = source.splitlines()
    kind = rng.word(0, 3)
    if kind == 0 and len(lines) > 1:  # drop a line
        del lines[rng.word(0, len(lines) - 1)]
        return "\n".join(lines)
    if kind == 1:  # duplicate a line
        index = rng.word(0, len(lines) - 1)
        lines.insert(index, lines[index])
        return "\n".join(lines)
    if kind == 2:  # truncate mid-file
        return "\n".join(lines[: max(1, rng.word(1, len(lines)))])
    # splice garbage into a line
    index = rng.word(0, len(lines) - 1)
    junk = "{}()=;+*@#"[rng.word(0, 9)]
    pos = rng.word(0, max(0, len(lines[index]) - 1))
    lines[index] = lines[index][:pos] + junk + lines[index][pos:]
    return "\n".join(lines)


def _mutation_sweep(count: int) -> None:
    rng = Rng(0xF022)
    for trial in range(count):
        source = generate_source(_knobs_for_seed(trial), seed=trial)
        for _ in range(rng.word(1, 4)):
            source = _garble(source, rng)
        try:
            compile_program(source)
        except MinicError:
            pass  # rejecting garbage is the job
        except RecursionError:
            pass  # pathological nesting from splices; not a frontend bug
        # anything else propagates and fails the test


def test_mutation_fuzz_only_minic_errors_quick():
    _mutation_sweep(60)


@pytest.mark.slow
def test_mutation_fuzz_only_minic_errors_1000():
    _mutation_sweep(1000)


def test_diagnostics_carry_position():
    """Frontend rejections point at a line (and usually a column)."""
    rng = Rng(0xD1A6)
    positioned = 0
    rejected = 0
    for trial in range(80):
        source = generate_source(_knobs_for_seed(trial), seed=trial)
        source = _garble(source, rng)
        try:
            compile_program(source)
        except MinicError as error:
            rejected += 1
            if "line " in str(error):
                positioned += 1
        except RecursionError:
            pass
    assert rejected > 5  # the mutations do bite
    assert positioned >= rejected * 3 // 4
