"""The emitter's correctness-by-construction guarantees."""

from __future__ import annotations

import re

import pytest

from repro.gen import PRESETS, generate_source, generated_workload, knobs_for
from repro.minic import compile_program


@pytest.mark.parametrize("preset", sorted(PRESETS))
class TestEveryPreset:
    def test_compiles_and_terminates(self, preset):
        """Generated programs are valid mini-C and halt within budget."""
        workload = generated_workload(f"gen:{preset}@17")
        machine = workload.machine(
            scale=1, max_instructions=3_000_000, tracing=False
        )
        result = machine.run()
        assert result.exit_code == 0
        assert result.output  # every program prints its checksum
        assert 0 < result.instructions < 3_000_000

    def test_deterministic_in_process(self, preset):
        knobs = PRESETS[preset]
        first = generate_source(knobs, seed=5, name=f"gen:{preset}@5")
        second = generate_source(knobs, seed=5, name=f"gen:{preset}@5")
        assert first == second

    def test_seed_changes_program(self, preset):
        knobs = PRESETS[preset]
        assert (generate_source(knobs, seed=1)
                != generate_source(knobs, seed=2))

    def test_loop_counters_only_in_loop_control(self, preset):
        """Reserved counters are only written by loop-control forms
        (for-header, do-while init/increment): every loop is counted
        by construction, which is what bounds termination."""
        source = generate_source(PRESETS[preset], seed=23)
        allowed = re.compile(r"i\d+ = 0;$|i\d+\+\+;$")
        for line in source.splitlines():
            stripped = line.strip()
            if stripped.startswith(("for ", "int i")):
                continue
            match = re.match(r"i\d+\s*[-+*/|&^%]?=[^=]|i\d+\+\+", stripped)
            assert match is None or allowed.match(stripped), line


def test_scale_extends_execution():
    workload = generated_workload("gen:mixed@4")
    small = workload.machine(scale=1, max_instructions=5_000_000,
                             tracing=False).run()
    large = workload.machine(scale=3, max_instructions=5_000_000,
                             tracing=False).run()
    assert large.instructions > small.instructions


def test_overrides_change_source():
    base = generate_source(knobs_for("loopy"), seed=8)
    deep = generate_source(knobs_for("loopy", {"loop_depth": 1}), seed=8)
    assert base != deep


def test_header_records_provenance():
    source = generated_workload("gen:branchy@42").source()
    head = "\n".join(source.splitlines()[:8])
    assert "gen:branchy@42" in head
    assert "seed" in head


def test_float_preset_is_fp_kind():
    assert generated_workload("gen:float-kernel@1").kind == "fp"
    assert generated_workload("gen:loopy@1").kind == "int"


def test_generated_source_compiles_directly():
    # compile_program is the same path the workload cache keys on.
    program = compile_program(generated_workload("gen:callgraph@3").source())
    assert program.instructions
