"""Campaign spec loading, shape checks and semantic validation."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, load_spec, spec_from_dict
from repro.campaign.spec import PredictorVariant

_SPEC_DICT = {
    "name": "unit",
    "description": "two-by-two",
    "scale": 1,
    "max_instructions": 30_000,
    "workloads": ["gen:loopy@1", "com"],
    "variants": [
        {"name": "baseline", "predictors": ["last", "stride"]},
        {"name": "ctx", "predictors": ["context(l1=10,l2=12,order=4)"]},
    ],
}

_SPEC_TOML = """
name = "unit"
description = "two-by-two"
scale = 1
max_instructions = 30000
workloads = ["gen:loopy@1", "com"]

[[variants]]
name = "baseline"
predictors = ["last", "stride"]

[[variants]]
name = "ctx"
predictors = ["context(l1=10,l2=12,order=4)"]
"""


class TestLoading:
    def test_toml_and_json_agree(self, tmp_path):
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(_SPEC_TOML)
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(_SPEC_DICT))
        assert load_spec(toml_path) == load_spec(json_path)

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: nope")
        with pytest.raises(ValueError, match="unknown spec format"):
            load_spec(path)

    def test_dict_round_trip(self):
        spec = spec_from_dict(_SPEC_DICT)
        assert spec_from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec"):
            spec_from_dict({**_SPEC_DICT, "surprise": 1})

    def test_missing_name_rejected(self):
        data = dict(_SPEC_DICT)
        del data["name"]
        with pytest.raises(ValueError, match="missing key"):
            spec_from_dict(data)


class TestValidation:
    def _spec(self, **overrides) -> CampaignSpec:
        spec = spec_from_dict(_SPEC_DICT)
        if not overrides:
            return spec
        data = spec.to_dict()
        data.update(overrides)
        return spec_from_dict(data)

    def test_valid(self):
        self._spec().validate()

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            self._spec(workloads=["nope"]).validate()

    def test_bad_gen_workload(self):
        with pytest.raises(ValueError, match="unknown preset"):
            self._spec(workloads=["gen:nope@1"]).validate()

    def test_duplicate_workload(self):
        with pytest.raises(ValueError, match="repeats a workload"):
            self._spec(workloads=["com", "com"]).validate()

    def test_duplicate_variant_name(self):
        variant = {"name": "twin", "predictors": ["last"]}
        with pytest.raises(ValueError, match="repeats a variant"):
            self._spec(variants=[variant, dict(variant)]).validate()

    def test_bad_predictor_spec(self):
        variant = {"name": "v", "predictors": ["context(bogus=1)"]}
        with pytest.raises(ValueError):
            self._spec(variants=[variant]).validate()

    def test_empty_variant(self):
        with pytest.raises(ValueError, match="no predictors"):
            PredictorVariant("v", ()).validate()

    def test_no_workloads(self):
        with pytest.raises(ValueError, match="no workloads"):
            self._spec(workloads=[]).validate()


class TestGrid:
    def test_one_config_per_variant(self):
        spec = spec_from_dict(_SPEC_DICT)
        configs = spec.configs()
        assert len(configs) == 2
        assert [c.predictors for c in configs] == [
            ("last", "stride"),
            ("context(l1=10,l2=12,order=4)",),
        ]
        for config in configs:
            assert config.workloads == ("gen:loopy@1", "com")
            assert config.scale == 1
            assert config.max_instructions == 30_000

    def test_jobs_is_grid_size(self):
        assert spec_from_dict(_SPEC_DICT).jobs() == 4
