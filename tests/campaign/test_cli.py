"""The ``gen``/``campaign`` CLI surface plus the provenance listings."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

_SPEC_TOML = """
name = "cli-e2e"
scale = 1
max_instructions = 20000
workloads = ["gen:loopy@1", "gen:graph-walk@2"]

[[variants]]
name = "baseline"
predictors = ["last", "stride"]

[[variants]]
name = "small"
predictors = ["last(bits=8)"]
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(_SPEC_TOML)
    return path


class TestGen:
    def test_prints_source(self, capsys):
        assert main(["gen", "gen:loopy@1"]) == 0
        out = capsys.readouterr().out
        assert "int main(" in out
        assert "gen:loopy@1" in out

    def test_info(self, capsys):
        assert main(["gen", "gen:graph-walk@7", "--info"]) == 0
        out = capsys.readouterr().out
        assert "preset:      graph-walk" in out
        assert "seed:        7" in out
        assert "trace key:" in out

    def test_presets(self, capsys):
        assert main(["gen", "--presets"]) == 0
        out = capsys.readouterr().out
        for preset in ("loopy", "pointer-chase", "graph-walk"):
            assert preset in out

    def test_run(self, capsys):
        assert main(["gen", "gen:arith@3", "--run"]) == 0
        assert capsys.readouterr().out.strip()

    def test_emit_asm(self, capsys):
        assert main(["gen", "gen:loopy@1", "--emit-asm"]) == 0
        assert "__start" in capsys.readouterr().out

    def test_bad_name(self, capsys):
        assert main(["gen", "gen:nope@1"]) == 1
        assert "unknown preset" in capsys.readouterr().err


class TestCampaign:
    def test_validate(self, spec_path, capsys):
        assert main(["campaign", "validate", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "4 jobs" in out

    def test_validate_rejects_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text('name = "x"\nworkloads = ["nope"]\n'
                        '[[variants]]\nname = "v"\npredictors = ["last"]\n')
        assert main(["campaign", "validate", str(path)]) == 1
        assert "invalid spec" in capsys.readouterr().err

    def test_run_then_warm_report(self, spec_path, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", str(spec_path),
                     "--cache-dir", cache]) == 0
        cold = capsys.readouterr().out
        assert "computed=4" in cold

        out_dir = tmp_path / "report"
        assert main(["campaign", "report", str(spec_path),
                     "--cache-dir", cache, "--out", str(out_dir)]) == 0
        warm = capsys.readouterr().out
        assert "pool jobs: 0 (fully warm)" in warm
        assert (out_dir / "index.md").is_file()
        manifest = json.loads((out_dir / "campaign.json").read_text())
        assert manifest["fully_warm"] is True

    def test_report_requires_out(self, spec_path):
        with pytest.raises(SystemExit):
            main(["campaign", "report", str(spec_path)])

    def test_missing_spec_file(self, tmp_path, capsys):
        assert main(["campaign", "run", str(tmp_path / "nope.toml")]) == 1
        assert "cannot load" in capsys.readouterr().err


class TestProvenanceListings:
    def test_workloads_generated_and_cache_info(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "listing",
            "max_instructions": 20_000,
            "workloads": ["gen:loopy@1", "com"],
            "variants": [{"name": "v", "predictors": ["last"]}],
        }))
        assert main(["campaign", "run", str(spec),
                     "--cache-dir", cache]) == 0
        capsys.readouterr()

        assert main(["workloads", "--generated",
                     "--cache-dir", cache]) == 0
        listing = capsys.readouterr().out
        assert "gen:loopy@1" in listing
        assert "loopy" in listing
        assert "com" not in listing.split("presets:")[0]

        assert main(["cache", "info", "--cache-dir", cache]) == 0
        info = capsys.readouterr().out
        assert "fixed 1, generated 1" in info

    def test_workloads_generated_empty_cache(self, tmp_path, capsys):
        assert main(["workloads", "--generated",
                     "--cache-dir", str(tmp_path / "empty")]) == 0
        out = capsys.readouterr().out
        assert "no synthesized workloads" in out
        assert "presets:" in out
