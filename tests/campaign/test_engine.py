"""End-to-end campaign execution against a real cache."""

from __future__ import annotations

import pytest

from repro.campaign import run_campaign, spec_from_dict
from repro.runner import ExperimentRunner, ResultStore, TraceStore
from repro.runner.metrics import STATUS_CACHE_HIT, STATUS_COMPUTED

_SPEC = {
    "name": "engine-e2e",
    "scale": 1,
    "max_instructions": 20_000,
    "workloads": ["gen:loopy@1", "gen:pointer-chase@2"],
    "variants": [
        {"name": "baseline", "predictors": ["last", "stride"]},
        {"name": "small", "predictors": ["last(bits=8)"]},
    ],
}


@pytest.fixture
def spec():
    return spec_from_dict(_SPEC)


def _runner(root) -> ExperimentRunner:
    return ExperimentRunner(store=ResultStore(root),
                            trace_store=TraceStore(root))


def test_cold_then_warm(tmp_path, spec):
    cold = run_campaign(spec, runner=_runner(tmp_path))
    assert cold.resolve_counts == {STATUS_COMPUTED: 4}
    assert cold.pool_jobs == 4
    assert not cold.fully_warm

    # A fresh runner over the same store must not touch the pool.
    warm = run_campaign(spec, runner=_runner(tmp_path))
    assert warm.resolve_counts == {STATUS_CACHE_HIT: 4}
    assert warm.pool_jobs == 0
    assert warm.fully_warm

    # Cached results are the same analyses.
    for variant, name, result in cold.iter_cells():
        again = warm.results[variant.name][name]
        assert again.nodes == result.nodes
        assert again.arcs == result.arcs
        assert set(again.predictors) == set(result.predictors)


def test_grid_shape_and_order(tmp_path, spec):
    campaign = run_campaign(spec, runner=_runner(tmp_path))
    assert campaign.variant_names() == ["baseline", "small"]
    cells = list(campaign.iter_cells())
    assert [(v.name, name) for v, name, __ in cells] == [
        ("baseline", "gen:loopy@1"),
        ("baseline", "gen:pointer-chase@2"),
        ("small", "gen:loopy@1"),
        ("small", "gen:pointer-chase@2"),
    ]
    for variant, __, result in cells:
        assert set(result.predictors) == set(variant.predictors)


def test_variants_share_one_simulation(tmp_path, spec):
    """The sweep path simulates each workload once for all variants."""
    campaign = run_campaign(spec, runner=_runner(tmp_path))
    total = sum(campaign.resolve_counts.values())
    assert total == spec.jobs()  # one resolution per grid cell ...
    traces = list(TraceStore(tmp_path).entries())
    assert len(traces) == len(spec.workloads)  # ... one trace per workload


def test_invalid_spec_refused(tmp_path, spec):
    from dataclasses import replace

    bad = replace(spec, workloads=("gen:nope@1",))
    with pytest.raises(ValueError, match="unknown preset"):
        run_campaign(bad, runner=_runner(tmp_path))


def test_wall_clock_recorded(tmp_path, spec):
    campaign = run_campaign(spec, runner=_runner(tmp_path))
    assert campaign.wall > 0
