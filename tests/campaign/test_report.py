"""Report completeness: every registered exhibit, mechanically."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    create_report,
    plot_registry,
    run_campaign,
    spec_from_dict,
    table_registry,
)
from repro.campaign.exhibits import (
    branch_accuracy_percent,
    predicted_node_percent,
)
from repro.runner import ExperimentRunner, ResultStore, TraceStore

_SPEC = {
    "name": "report-e2e",
    "scale": 1,
    "max_instructions": 20_000,
    "workloads": ["gen:branchy@3", "gen:arith@5"],
    "variants": [
        {"name": "baseline", "predictors": ["last", "stride"]},
        {"name": "hybrid", "predictors": ["context", "stride"]},
    ],
}


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign-cache")
    runner = ExperimentRunner(store=ResultStore(root),
                              trace_store=TraceStore(root))
    return run_campaign(spec_from_dict(_SPEC), runner=runner)


def test_report_contains_every_registered_exhibit(campaign, tmp_path):
    out = create_report(campaign, tmp_path / "report")
    for name in table_registry:
        path = out / "tables" / f"{name}.txt"
        assert path.is_file(), f"missing table {name}"
        assert path.read_text().strip()
    for name in plot_registry:
        path = out / "plots" / f"{name}.svg"
        assert path.is_file(), f"missing plot {name}"
        text = path.read_text()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")


def test_manifest_is_machine_readable(campaign, tmp_path):
    out = create_report(campaign, tmp_path / "report")
    manifest = json.loads((out / "campaign.json").read_text())
    assert manifest["campaign"]["name"] == "report-e2e"
    assert manifest["grid_jobs"] == 4
    assert manifest["pool_jobs"] + sum(
        count for status, count in manifest["resolve_counts"].items()
        if status in ("memo-hit", "cache-hit")
    ) == 4
    assert sorted(manifest["tables"]) == [
        f"tables/{name}.txt" for name in sorted(table_registry)
    ]
    assert sorted(manifest["plots"]) == [
        f"plots/{name}.svg" for name in sorted(plot_registry)
    ]


def test_index_inlines_every_table(campaign, tmp_path):
    out = create_report(campaign, tmp_path / "report")
    index = (out / "index.md").read_text()
    for name in table_registry:
        assert f"### {name}" in index
    for name in plot_registry:
        assert f"plots/{name}.svg" in index
    assert "report-e2e" in index


def test_report_is_idempotent(campaign, tmp_path):
    out = tmp_path / "report"
    create_report(campaign, out)
    first = {p: p.read_text() for p in sorted(out.rglob("*.txt"))}
    create_report(campaign, out)
    second = {p: p.read_text() for p in sorted(out.rglob("*.txt"))}
    assert first == second


def test_workloads_table_shows_provenance(campaign):
    rendered = table_registry["workloads"](campaign).render()
    assert "preset=branchy" in rendered
    assert "seed=3" in rendered


def test_metric_helpers_in_range(campaign):
    for variant, __, result in campaign.iter_cells():
        for spec in variant.predictors:
            nodes = predicted_node_percent(result, spec)
            assert 0.0 <= nodes <= 100.0
            branches = branch_accuracy_percent(result, spec)
            assert branches is None or 0.0 <= branches <= 100.0


def test_duplicate_registration_refused():
    from repro.campaign.exhibits import table

    existing = next(iter(table_registry))
    with pytest.raises(ValueError, match="duplicate"):
        table(existing)(lambda campaign: None)
