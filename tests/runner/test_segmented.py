"""Segment-parallel execution through the runner.

Covers the sidecar lifecycle (capture-time write, replay backfill,
invalidation on re-put), byte-identity of the segmented replay paths
against the serial engine, chaos-injected worker crashes of segment
tasks (pool-level retry and whole-job serial fallback), and the
``cache reindex`` journal semantics.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.core.export import result_to_dict
from repro.obs import Recorder, recording
from repro.runner import (
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentRunner,
    FaultPlan,
    FaultSpec,
    ResultStore,
    TraceStore,
    trace_key,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

CONFIG = ExperimentConfig(max_instructions=4_000, workloads=("com",))
#: 4000 records at 500-record spacing: 8 checkpoints, well-formed.
SEG_POLICY = ExecutionPolicy(jobs=2, segments=4, segment_records=500)
KEY = trace_key("com", CONFIG.scale)


def _dump(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=False)


@pytest.fixture()
def baseline(tmp_path_factory):
    """The serial, unsharded answer for CONFIG's one workload."""
    root = tmp_path_factory.mktemp("baseline")
    runner = ExperimentRunner(store=ResultStore(root),
                              trace_store=TraceStore(root))
    return _dump(runner.run_one("com", CONFIG))


def _stores(root):
    return ResultStore(root), TraceStore(root)


class TestSidecarLifecycle:
    def test_cold_capture_writes_sidecar(self, tmp_path):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store, trace_store=traces,
                         policy=SEG_POLICY).run_one("com", CONFIG)
        assert traces.has_segindex(KEY)
        index = traces.get_segindex(KEY)
        assert index is not None and index.n_records == 4_000

    def test_unsharded_policy_writes_no_sidecar(self, tmp_path):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store,
                         trace_store=traces).run_one("com", CONFIG)
        assert not traces.has_segindex(KEY)

    def test_replay_backfills_sidecar(self, tmp_path):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store,
                         trace_store=traces).run_one("com", CONFIG)
        assert not traces.has_segindex(KEY)
        store.clear()
        ExperimentRunner(store=ResultStore(tmp_path), trace_store=traces,
                         policy=SEG_POLICY).run_one("com", CONFIG)
        assert traces.has_segindex(KEY)

    def test_put_invalidates_sidecar(self, tmp_path):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store, trace_store=traces,
                         policy=SEG_POLICY).run_one("com", CONFIG)
        assert traces.has_segindex(KEY)
        header, records = traces.get(KEY, need=CONFIG.max_instructions)
        traces.put(KEY, records[:100], header["n_static"],
                   complete=False, workload="com")
        assert not traces.has_segindex(KEY)

    def test_trace_removal_removes_sidecar(self, tmp_path):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store, trace_store=traces,
                         policy=SEG_POLICY).run_one("com", CONFIG)
        sidecar = traces.path_for_segidx(KEY)
        assert sidecar.exists()
        traces.clear()
        assert not sidecar.exists()


class TestSegmentedReplay:
    def test_serial_path_segmented_replay_identical(self, tmp_path,
                                                    baseline):
        store, traces = _stores(tmp_path)
        cold = ExperimentRunner(store=store, trace_store=traces,
                                policy=SEG_POLICY)
        assert _dump(cold.run_one("com", CONFIG)) == baseline
        store.clear()
        warm = ExperimentRunner(store=ResultStore(tmp_path),
                                trace_store=traces, policy=SEG_POLICY)
        with recording(Recorder()) as rec:
            result = warm.run_one("com", CONFIG)
        assert _dump(result) == baseline
        counters = rec.snapshot()["counters"]
        assert counters.get("analyze.shard.runs", 0) >= 1

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_parallel_segment_tasks_identical(self, tmp_path, baseline):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store, trace_store=traces,
                         policy=SEG_POLICY).run_one("com", CONFIG)
        store.clear()
        warm = ExperimentRunner(store=ResultStore(tmp_path),
                                trace_store=traces, policy=SEG_POLICY)
        run = warm.run(CONFIG, jobs=2)
        assert _dump(run.require()["com"]) == baseline
        statuses = [(m.workload, m.status) for m in run.metrics.jobs]
        assert statuses == [("com", "replayed")]


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
class TestChaos:
    def _warm(self, tmp_path):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store, trace_store=traces,
                         policy=SEG_POLICY).run_one("com", CONFIG)
        store.clear()
        return traces

    def test_single_segment_crash_is_retried_by_pool(self, tmp_path,
                                                     baseline):
        traces = self._warm(tmp_path)
        plan = FaultPlan(seed=11, specs={
            "worker.crash": FaultSpec(schedule=(1,), max_fires=1),
        })
        runner = ExperimentRunner(store=ResultStore(tmp_path),
                                  trace_store=traces, faults=plan,
                                  policy=SEG_POLICY)
        run = runner.run(CONFIG, jobs=2)
        assert _dump(run.require()["com"]) == baseline

    def test_persistent_segment_crashes_fall_back_serial(self, tmp_path,
                                                         baseline):
        traces = self._warm(tmp_path)
        plan = FaultPlan(seed=11, specs={
            "worker.crash": FaultSpec(rate=1.0),
        })
        runner = ExperimentRunner(store=ResultStore(tmp_path),
                                  trace_store=traces, faults=plan,
                                  policy=SEG_POLICY)
        with recording(Recorder()) as rec:
            run = runner.run(CONFIG, jobs=2)
        # Every segment worker died; the whole job must retry serially
        # in the parent and still produce the fault-free bytes.
        assert _dump(run.require()["com"]) == baseline
        counters = rec.snapshot()["counters"]
        assert counters.get("analyze.shard.fallback", 0) >= 1


class TestReindex:
    def _capture(self, tmp_path):
        store, traces = _stores(tmp_path)
        ExperimentRunner(store=store,
                         trace_store=traces).run_one("com", CONFIG)
        assert not traces.has_segindex(KEY)
        return traces

    def test_reindex_builds_then_skips(self, tmp_path, capsys):
        from repro.cli import _reindex

        traces = self._capture(tmp_path)
        assert _reindex(traces, 500) == 0
        assert traces.has_segindex(KEY)
        first = capsys.readouterr().out
        assert "reindexed 1 trace(s)" in first
        assert _reindex(traces, 500) == 0
        second = capsys.readouterr().out
        assert "reindexed 0 trace(s); 1 already indexed" in second

    def test_short_traces_skipped_without_journal(self, tmp_path, capsys):
        from repro.cli import _reindex

        traces = self._capture(tmp_path)
        # Spacing larger than half the trace: cannot span 2 segments.
        assert _reindex(traces, 3_000) == 0
        assert not traces.has_segindex(KEY)
        assert "1 too short" in capsys.readouterr().out
        # A finer spacing afterwards must still index it — the short
        # skip was not journaled as done.
        assert _reindex(traces, 500) == 0
        assert traces.has_segindex(KEY)

    def test_killed_run_journal_resumes_then_clears(self, tmp_path,
                                                    capsys):
        from repro.cli import _reindex
        from repro.runner.journal import STATUS_DONE, RunJournal

        traces = self._capture(tmp_path)
        # Simulate a reindex killed after journaling this key: the
        # journal says done, the sidecar write also landed.
        assert _reindex(traces, 500) == 0
        journal_path = traces.root / "reindex.journal.jsonl"
        with RunJournal(journal_path) as journal:
            journal.record(KEY, "com", STATUS_DONE)
        assert journal_path.exists()
        capsys.readouterr()
        # The resumed pass skips it and, having finished cleanly,
        # removes its journal — the resume point is not a permanent
        # ledger.
        assert _reindex(traces, 500) == 0
        assert "1 already indexed" in capsys.readouterr().out
        assert not journal_path.exists()
