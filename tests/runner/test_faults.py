"""Seeded fault injection: determinism, wiring, and the chaos
invariant — a faulted run must produce fault-free results.

Worker functions must be module-level so they survive the trip into a
worker process under any start method.
"""

import json

import pytest

from repro.core.export import result_to_dict
from repro.obs import Recorder, recording
from repro.runner import (
    ExperimentConfig,
    ExperimentRunner,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResultStore,
    Task,
    TaskPool,
    TaskResult,
    TraceStore,
    default_chaos_plan,
    get_fault_plan,
    injecting,
    set_fault_plan,
)

KEY = "aa" + "0" * 62


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


class TestFaultPlan:
    def test_schedule_fires_on_exact_ordinals(self):
        plan = FaultPlan(seed=0, specs={
            "x": FaultSpec(schedule=(2, 4)),
        })
        fired = [plan.should_fire("x") for __ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_max_fires_caps_the_site(self):
        plan = FaultPlan(seed=0, specs={
            "x": FaultSpec(rate=1.0, max_fires=2),
        })
        fired = [plan.should_fire("x") for __ in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.fired["x"] == 2

    def test_rate_sequence_is_seed_deterministic(self):
        def sequence(seed):
            plan = FaultPlan(seed=seed, specs={"x": FaultSpec(rate=0.5)})
            return [plan.should_fire("x") for __ in range(64)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_sites_draw_independent_rngs(self):
        plan = FaultPlan(seed=0, specs={
            "a": FaultSpec(rate=0.5), "b": FaultSpec(rate=0.5),
        })
        draws_a = [plan.should_fire("a") for __ in range(64)]
        solo = FaultPlan(seed=0, specs={"a": FaultSpec(rate=0.5)})
        # Interleaving "b" evaluations must not perturb "a"'s sequence.
        assert draws_a == [solo.should_fire("a") for __ in range(64)]

    def test_unknown_site_never_fires(self):
        plan = FaultPlan(seed=0, specs={})
        assert not plan.should_fire("nope")

    def test_round_trips_through_dict(self):
        plan = default_chaos_plan(seed=3, timeout=1.0)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == plan.seed
        assert clone.specs == plan.specs

    def test_injection_fires_counters(self):
        plan = FaultPlan(seed=0, specs={"x": FaultSpec(schedule=(1,))})
        with recording(Recorder()) as rec:
            assert plan.should_fire("x")
        assert rec.snapshot()["counters"]["faults.injected.x"] == 1


class TestInstallation:
    def test_injecting_installs_and_restores(self):
        plan = FaultPlan(seed=0)
        assert get_fault_plan() is None
        with injecting(plan):
            assert get_fault_plan() is plan
        assert get_fault_plan() is None

    def test_no_plan_means_no_faults(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"x": 1})
        assert store.get(KEY) == {"x": 1}


class TestStoreWiring:
    def test_injected_read_error_keeps_the_file(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY, {"x": 1})
        plan = FaultPlan(seed=0, specs={
            "store.read": FaultSpec(schedule=(1,), max_fires=1),
        })
        with injecting(plan), recording(Recorder()) as rec:
            assert store.get(KEY) is None   # injected miss...
            assert path.exists()            # ...but nothing deleted
            assert store.get(KEY) == {"x": 1}
        counters = rec.snapshot()["counters"]
        assert counters["store.result.read_errors"] == 1
        assert "store.result.corruption" not in counters

    def test_truncated_write_is_caught_by_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = FaultPlan(seed=0, specs={
            "store.truncate": FaultSpec(schedule=(1,), max_fires=1),
        })
        with injecting(plan), recording(Recorder()) as rec:
            path = store.put(KEY, {"x": 1})
            assert store.get(KEY) is None   # torn envelope detected
            assert not path.exists()        # corrupt entry dropped
        assert rec.snapshot()["counters"]["store.result.corruption"] == 1

    def test_injected_write_error_raises_oserror(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = FaultPlan(seed=0, specs={
            "store.write": FaultSpec(schedule=(1,), max_fires=1),
        })
        with injecting(plan):
            with pytest.raises(OSError):
                store.put(KEY, {"x": 1})
            store.put(KEY, {"x": 1})  # next attempt succeeds
        assert store.get(KEY) == {"x": 1}

    def test_trace_corruption_recovers_on_next_get(self, tmp_path):
        from repro.cpu.trace import DynInst, Source
        from repro.isa.opcodes import Category

        trace_store = TraceStore(tmp_path)
        records = [
            DynInst(uid=uid, pc=3, op="addi", category=Category.ALU,
                    has_imm=True,
                    srcs=(Source(uid, uid - 1 if uid else None,
                                 3 if uid else None, False, 0),),
                    out=uid + 1)
            for uid in range(8)
        ]
        plan = FaultPlan(seed=0, specs={
            "trace.corrupt": FaultSpec(schedule=(1,), max_fires=1),
        })
        with injecting(plan), recording(Recorder()) as rec:
            path = trace_store.put(KEY, records, 4, complete=True)
            assert trace_store.get(KEY) is None  # rotted on disk
            assert not path.exists()
        assert rec.snapshot()["counters"]["store.trace.corruption"] == 1
        # A fresh capture repairs the tier.
        trace_store.put(KEY, records, 4, complete=True)
        assert trace_store.get(KEY) is not None


def _ok():
    return "ok"


class TestPoolWiring:
    def test_spawn_fault_is_retried(self):
        plan = FaultPlan(seed=0, specs={
            "pool.spawn": FaultSpec(schedule=(1,), max_fires=1),
        })
        with injecting(plan), recording(Recorder()) as rec:
            pool = TaskPool(max_workers=1, retries=2, backoff_base=0.001)
            run = pool.run([Task("t", _ok)])
        outcome = run.outcomes["t"]
        assert isinstance(outcome, TaskResult)
        assert outcome.attempts == 2
        assert rec.snapshot()["counters"]["pool.spawn_failures"] == 1

    def test_worker_crash_fault_is_retried(self):
        plan = FaultPlan(seed=0, specs={
            "worker.crash": FaultSpec(schedule=(1,), max_fires=1),
        })
        with injecting(plan):
            pool = TaskPool(max_workers=1, retries=2, backoff_base=0.001)
            run = pool.run([Task("t", _ok)])
        outcome = run.outcomes["t"]
        assert isinstance(outcome, TaskResult)
        assert outcome.attempts == 2
        assert plan.fired["worker.crash"] == 1


def _canonical(results) -> dict:
    return {name: json.dumps(result_to_dict(result), sort_keys=True)
            for name, result in results.items()}


class TestChaosInvariant:
    """The headline property: chaos changes nothing but the weather."""

    CONFIG = ExperimentConfig(workloads=("com",), max_instructions=2_000)

    def _run(self, root, faults=None):
        runner = ExperimentRunner(
            store=ResultStore(root), trace_store=TraceStore(root),
            jobs=2, retries=6, faults=faults,
        )
        return runner.run(self.CONFIG)

    def test_faulted_run_matches_fault_free(self, tmp_path):
        clean = self._run(tmp_path / "clean")
        assert not clean.failures
        plan = default_chaos_plan(seed=0)
        chaotic = self._run(tmp_path / "chaos", faults=plan)
        assert not chaotic.failures
        assert _canonical(chaotic.results) == _canonical(clean.results)
        assert plan.distinct_fired() >= 2  # parent-side sites alone
        # The runner restored the fault-free world on exit.
        assert get_fault_plan() is None

    def test_no_temp_files_survive_chaos(self, tmp_path):
        root = tmp_path / "chaos"
        self._run(root, faults=default_chaos_plan(seed=1))
        assert list(root.rglob("*.tmp")) == []


class TestEnospcDegradation:
    """A full disk degrades the stores; it never fails a runnable job."""

    def test_result_store_evicts_and_retries_once(self, tmp_path):
        plan = FaultPlan(seed=0, specs={
            "store.enospc": FaultSpec(schedule=(1,), max_fires=1),
        })
        store = ResultStore(tmp_path)
        with injecting(plan), recording(Recorder()) as rec:
            store.put(KEY, {"x": 1})
        # First publish hit ENOSPC, eviction freed space, the retry
        # landed: the entry is readable and the incident was counted.
        assert store.get(KEY) == {"x": 1}
        assert rec.snapshot()["counters"]["store.result.enospc"] == 1

    def test_run_survives_a_persistently_full_disk(self, tmp_path):
        # Every store/journal write fails: the run completes anyway,
        # uncached and unjournaled, with zero job failures.
        plan = FaultPlan(seed=0, specs={
            "store.enospc": FaultSpec(rate=1.0),
        })
        runner = ExperimentRunner(store=ResultStore(tmp_path),
                                  faults=plan)
        with recording(Recorder()) as rec:
            run = runner.run(ExperimentConfig(
                workloads=("com",), max_instructions=1_000))
        assert not run.failures
        assert set(run.results) == {"com"}
        counters = rec.snapshot()["counters"]
        assert counters["journal.enospc"] == 1
        assert counters["store.result.enospc"] >= 1
