"""Tests for the experiment runner subsystem."""
