"""Write-ahead journal: durability, replay, locking, runner resume."""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import JournalConflict
from repro.obs import Recorder, recording
from repro.runner import (
    ExperimentConfig,
    ExperimentRunner,
    ResultStore,
    RunJournal,
    TraceStore,
)
from repro.runner.journal import STATUS_DONE, STATUS_FAILED

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


class TestRecordReplay:
    def test_replay_round_trips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.record(KEY_A, "com", STATUS_DONE)
            journal.record(KEY_B, "go", STATUS_FAILED)
        with RunJournal(path, resume=True) as journal:
            assert journal.completed(KEY_A)
            assert not journal.completed(KEY_B)
            assert journal.entries == {KEY_A: STATUS_DONE,
                                       KEY_B: STATUS_FAILED}

    def test_open_without_resume_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.record(KEY_A, "com", STATUS_DONE)
        with RunJournal(path) as journal:
            assert not journal.completed(KEY_A)
            assert journal.entries == {}

    def test_last_status_wins_on_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.record(KEY_A, "com", STATUS_FAILED)
            journal.record(KEY_A, "com", STATUS_DONE)
        with RunJournal(path, resume=True) as journal:
            assert journal.completed(KEY_A)

    def test_garbled_lines_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.record(KEY_A, "com", STATUS_DONE)
        # Simulate a torn write from a crash mid-append.
        with open(path, "a") as handle:
            handle.write('{"key": "' + KEY_B)
        journal = RunJournal(path, resume=True)
        with journal:
            assert journal.completed(KEY_A)
            assert journal.bad_lines == 1
            assert KEY_B not in journal.entries

    def test_records_survive_a_hard_kill(self, tmp_path):
        """fsync means the journal is readable even after SIGKILL."""
        script = (
            "import os, sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.runner import RunJournal\n"
            "journal = RunJournal(%r).open()\n"
            "journal.record(%r, 'com', 'done')\n"
            "os.kill(os.getpid(), 9)\n"
        ) % (os.path.join(os.getcwd(), "src"),
             str(tmp_path / "journal.jsonl"), KEY_A)
        process = subprocess.run([sys.executable, "-c", script])
        assert process.returncode == -9
        # The killed process never released the lock: the stale lock
        # must be broken, not honoured.
        with RunJournal(tmp_path / "journal.jsonl", resume=True) as journal:
            assert journal.completed(KEY_A)


class TestLocking:
    def test_live_lock_raises_conflict(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path):
            with pytest.raises(JournalConflict):
                RunJournal(path).open()

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        # A pid that is certainly dead: a just-reaped child's.
        child = subprocess.run([sys.executable, "-c", "pass"])
        (tmp_path / "journal.jsonl.lock").write_text("99999999")
        with RunJournal(path) as journal:
            journal.record(KEY_A, "com", STATUS_DONE)
        assert not (tmp_path / "journal.jsonl.lock").exists()
        assert child.returncode == 0

    def test_close_releases_the_lock(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path):
            pass
        with RunJournal(path):  # re-acquirable immediately
            pass


class _CancelAfterStoreHas:
    """Cancel 'event' that trips once the store holds >= n results."""

    def __init__(self, store, n):
        self.store = store
        self.n = n

    def is_set(self) -> bool:
        return len(self.store.entries()) >= self.n


CONFIG = ExperimentConfig(workloads=("com", "go", "ijp"),
                          max_instructions=1_500)


def _runner(root, **kwargs) -> ExperimentRunner:
    return ExperimentRunner(
        store=ResultStore(root), trace_store=TraceStore(root), **kwargs
    )


class TestRunnerResume:
    def test_interrupted_run_checkpoints_then_resumes(self, tmp_path):
        root = tmp_path / "cache"
        runner = _runner(root)
        cancel = _CancelAfterStoreHas(runner.store, 1)
        run = runner.run(CONFIG, cancel=cancel)
        assert run.metrics.interrupted
        assert run.journal_path == str(root / "journal.jsonl")
        assert 1 <= len(run.results) < len(CONFIG.workloads)
        with pytest.raises(Exception) as info:
            run.require()
        assert "resume" in str(info.value)

        # A fresh runner (fresh memo) resumes from the journal: the
        # checkpointed jobs are cache hits it can trust.
        resumed = _runner(root, observe=True)
        run2 = resumed.run(CONFIG, resume=True)
        assert not run2.failures
        assert not run2.metrics.interrupted
        assert set(run2.results) == set(CONFIG.workloads)
        counters = run2.metrics.profile["counters"]
        assert counters["journal.skips"] >= 1

    def test_journaled_done_with_missing_store_entry_reexecutes(
            self, tmp_path):
        root = tmp_path / "cache"
        run = _runner(root).run(CONFIG)
        assert not run.failures
        # Vandalise the store behind the journal's back.
        ResultStore(root).clear()
        resumed = _runner(root, observe=True)
        run2 = resumed.run(CONFIG, resume=True)
        assert not run2.failures
        assert set(run2.results) == set(CONFIG.workloads)
        counters = run2.metrics.profile["counters"]
        assert counters["journal.conflicts"] == len(CONFIG.workloads)

    def test_journal_lines_are_valid_jsonl(self, tmp_path):
        root = tmp_path / "cache"
        run = _runner(root).run(CONFIG)
        assert not run.failures
        lines = [json.loads(line) for line in
                 (root / "journal.jsonl").read_text().splitlines()]
        header, records = lines[0], lines[1:]
        assert header["journal"] == 1
        assert header["pid"] == os.getpid()
        assert {record["workload"] for record in records} == \
            set(CONFIG.workloads)
        assert all(record["status"] == STATUS_DONE for record in records)

    def test_no_store_means_no_journal(self, tmp_path):
        runner = ExperimentRunner(store=None)
        run = runner.run(ExperimentConfig(workloads=("com",),
                                          max_instructions=1_000))
        assert not run.failures
        assert run.journal_path is None

    def test_enospc_disables_the_journal_not_the_run(self, tmp_path):
        # A full disk must not crash a run that can still compute: the
        # journal disables itself (counted, warned) and stays silent.
        from repro.runner import FaultPlan, FaultSpec, injecting

        plan = FaultPlan(seed=0, specs={
            "store.enospc": FaultSpec(schedule=(1,), max_fires=1),
        })
        path = tmp_path / "journal.jsonl"
        with injecting(plan):
            with recording(Recorder()) as rec:
                with RunJournal(path) as journal:
                    journal.record(KEY_A, "com", STATUS_DONE)  # fires
                    journal.record(KEY_B, "go", STATUS_DONE)   # no-op
        assert rec.snapshot()["counters"]["journal.enospc"] == 1
        # The header survived; neither record did — and a resume sees
        # a valid (empty) journal rather than a torn file.
        with RunJournal(path, resume=True) as journal:
            assert journal.entries == {}

    def test_sibling_lock_degrades_gracefully(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        with RunJournal(root / "journal.jsonl"):
            # A live sibling holds the journal; the run proceeds
            # without checkpointing instead of failing.
            with recording(Recorder()) as rec:
                run = _runner(root).run(
                    ExperimentConfig(workloads=("com",),
                                     max_instructions=1_000))
        assert not run.failures
        assert run.journal_path is None
        assert rec.snapshot()["counters"]["journal.conflicts"] == 1
