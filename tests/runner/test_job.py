"""Job model: content hashing and source-change invalidation."""

import pytest

from repro.runner import ExperimentConfig, Job, job_key
from repro.workloads import get_workload
from repro.workloads import suite as suite_module
from repro.workloads.suite import Workload

SMALL = ExperimentConfig(max_instructions=2_000)

PROGRAM_V1 = """
int main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 8; i++) total = total + i;
    return total;
}
"""

PROGRAM_V2 = PROGRAM_V1.replace("i < 8", "i < 16")


@pytest.fixture
def temp_workload(tmp_path, monkeypatch):
    """A throwaway workload whose source lives under tmp_path."""
    source = tmp_path / "tmpw.mc"
    source.write_text(PROGRAM_V1)
    workload = Workload(
        "tmpw", "000.tmpw", "int", "temp workload",
        lambda scale: ([scale], []), source_file=source,
    )
    monkeypatch.setitem(suite_module._BY_NAME, "tmpw", workload)
    return workload


class TestJobKey:
    def test_deterministic(self):
        job = Job("com", SMALL)
        assert job_key(job) == job_key(job)
        assert len(job_key(job)) == 64

    def test_workload_changes_key(self):
        assert job_key(Job("com", SMALL)) != job_key(Job("go", SMALL))

    def test_budget_changes_key(self):
        other = ExperimentConfig(max_instructions=3_000)
        assert job_key(Job("com", SMALL)) != job_key(Job("com", other))

    def test_scale_changes_key(self):
        other = ExperimentConfig(max_instructions=2_000, scale=2)
        assert job_key(Job("com", SMALL)) != job_key(Job("com", other))

    def test_predictor_set_changes_key(self):
        other = ExperimentConfig(max_instructions=2_000,
                                 predictors=("stride",))
        assert job_key(Job("com", SMALL)) != job_key(Job("com", other))

    def test_suite_scope_does_not_change_key(self):
        # `workloads` selects which jobs run; it is not part of any
        # single job's identity.
        other = ExperimentConfig(max_instructions=2_000,
                                 workloads=("com", "go"))
        assert job_key(Job("com", SMALL)) == job_key(Job("com", other))

    def test_source_edit_changes_key(self, temp_workload):
        before = job_key(Job("tmpw", SMALL))
        temp_workload.source_path.write_text(PROGRAM_V2)
        assert job_key(Job("tmpw", SMALL)) != before


class TestWorkloadProgramCache:
    def test_program_cached_while_source_unchanged(self, temp_workload):
        assert temp_workload.program() is temp_workload.program()

    def test_source_edit_recompiles(self, temp_workload):
        stale = temp_workload.program()
        temp_workload.source_path.write_text(PROGRAM_V2)
        fresh = temp_workload.program()
        assert fresh is not stale
        assert fresh.listing() != stale.listing()

    def test_source_hash_tracks_file(self, temp_workload):
        before = temp_workload.source_hash()
        temp_workload.source_path.write_text(PROGRAM_V2)
        assert temp_workload.source_hash() != before

    def test_bundled_workloads_resolve_sources(self):
        for workload in suite_module.SUITE:
            assert workload.source_path.is_file()
            assert len(workload.source_hash()) == 64


class TestAnalysisConfig:
    def test_job_analysis_config_mirrors_experiment_config(self):
        config = ExperimentConfig(
            max_instructions=5_000, predictors=("last", "stride"),
            trees_for=("stride",), gen_cap=32,
        )
        analysis = Job("com", config).analysis_config()
        assert analysis.max_instructions == 5_000
        assert analysis.predictors == ("last", "stride")
        assert analysis.trees_for == ("stride",)
        assert analysis.gen_cap == 32

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            job_key(Job("nope", SMALL))

    def test_get_workload_still_exposes_registry(self):
        assert get_workload("com").name == "com"
