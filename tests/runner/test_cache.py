"""Result store: round trips, corruption recovery, LRU bounding."""

import json
import logging
import os

from repro.core.export import result_from_dict, result_to_dict
from repro.obs import Recorder, recording
from repro.runner import ExperimentConfig, ResultStore
from repro.runner.api import _analyze
from repro.runner.cache import SCHEMA_VERSION

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


class TestStoreBasics:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY_A) is None
        store.put(KEY_A, {"x": 1})
        assert store.get(KEY_A) == {"x": 1}
        assert store.hits == 1 and store.misses == 1

    def test_contains_and_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.contains(KEY_A)
        store.put(KEY_A, {"x": 1})
        store.put(KEY_B, {"y": 2})
        assert store.contains(KEY_A)
        assert len(store.entries()) == 2

    def test_put_overwrites_atomically(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        store.put(KEY_A, {"x": 2})
        assert store.get(KEY_A) == {"x": 2}
        assert len(store.entries()) == 1

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        store.put(KEY_B, {"y": 2})
        assert store.clear() == 2
        assert store.entries() == []


class TestCorruptionRecovery:
    def test_garbage_file_is_a_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        path.write_text("not json at all {{{")
        assert store.get(KEY_A) is None
        assert not path.exists()

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(KEY_A) is None

    def test_tampered_payload_fails_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        envelope = json.loads(path.read_text())
        envelope["payload"]["x"] = 999
        path.write_text(json.dumps(envelope))
        assert store.get(KEY_A) is None
        assert not path.exists()

    def test_old_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        envelope = json.loads(path.read_text())
        envelope["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope))
        assert store.get(KEY_A) is None

    def test_recovery_after_corruption_via_put(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        path.write_text("garbage")
        assert store.get(KEY_A) is None
        store.put(KEY_A, {"x": 1})
        assert store.get(KEY_A) == {"x": 1}


class TestCorruptionObservability:
    """Recovery is graceful but no longer *silent*: every dropped
    entry is counted and logged."""

    def test_corruption_counts_and_warns(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        path.write_text("garbage")
        with recording(Recorder()) as rec, \
                caplog.at_level(logging.WARNING, "repro.runner.cache"):
            assert store.get(KEY_A) is None
        counters = rec.snapshot()["counters"]
        assert counters["store.result.corruption"] == 1
        assert counters["store.result.misses"] == 1
        assert any("corrupt" in record.message
                   for record in caplog.records)

    def test_checksum_mismatch_counts_as_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        envelope = json.loads(path.read_text())
        envelope["payload"]["x"] = 999
        path.write_text(json.dumps(envelope))
        with recording(Recorder()) as rec:
            assert store.get(KEY_A) is None
        assert rec.snapshot()["counters"]["store.result.corruption"] == 1

    def test_clean_hits_and_misses_count_no_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        with recording(Recorder()) as rec:
            assert store.get(KEY_A) == {"x": 1}
            assert store.get(KEY_B) is None
        counters = rec.snapshot()["counters"]
        assert "store.result.corruption" not in counters
        assert "store.result.read_errors" not in counters
        assert counters["store.result.hits"] == 1
        assert counters["store.result.misses"] == 1


class TestEviction:
    def test_lru_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=10**9)
        paths = {}
        for age, key in ((300, KEY_A), (200, KEY_B), (100, KEY_C)):
            paths[key] = store.put(key, {"k": key})
            stamp = 1_600_000_000 - age
            os.utime(paths[key], (stamp, stamp))
        store.max_bytes = paths[KEY_C].stat().st_size * 2 + 1
        store.evict()
        assert not store.contains(KEY_A)
        assert store.contains(KEY_B) and store.contains(KEY_C)

    def test_newest_entry_always_survives(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=1)  # cap below one entry
        store.put(KEY_A, {"x": 1})
        assert store.contains(KEY_A)

    def test_get_refreshes_recency(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=10**9)
        path_a = store.put(KEY_A, {"k": KEY_A})
        path_b = store.put(KEY_B, {"k": KEY_B})
        for index, path in enumerate((path_a, path_b)):
            stamp = 1_600_000_000 + index
            os.utime(path, (stamp, stamp))
        assert store.get(KEY_A) is not None  # bumps A past B
        store.max_bytes = path_a.stat().st_size + 1
        store.evict()
        assert store.contains(KEY_A)
        assert not store.contains(KEY_B)


class TestResultRoundTrip:
    def test_analysis_result_round_trips_exactly(self):
        config = ExperimentConfig(max_instructions=2_000)
        result = _analyze("com", config)
        payload = result_to_dict(result)
        # Force a real JSON round trip (str keys, no tuples).
        payload = json.loads(json.dumps(payload))
        assert result_from_dict(payload) == result

    def test_round_trip_through_store(self, tmp_path):
        config = ExperimentConfig(max_instructions=2_000)
        result = _analyze("go", config)
        store = ResultStore(tmp_path)
        store.put(KEY_A, result_to_dict(result))
        assert result_from_dict(store.get(KEY_A)) == result

    def test_round_trip_preserves_optional_none(self):
        config = ExperimentConfig(max_instructions=1_000,
                                  trees_for=())
        result = _analyze("com", config)
        restored = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert restored.predictors["last"].trees is None
        assert restored == result
