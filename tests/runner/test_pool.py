"""Task pool: parallel execution, timeout, retry with backoff, crash
isolation, serial fallback.

Worker functions must be module-level so they survive the trip into a
worker process under any start method.
"""

import multiprocessing
import os
import time

from repro.obs import Recorder, recording
from repro.runner import Task, TaskError, TaskPool, TaskResult


def _square(x):
    return x * x


def _raise(message):
    raise ValueError(message)


def _hard_exit(code):
    os._exit(code)


def _sleep(seconds):
    time.sleep(seconds)
    return "woke"


def _out_of_space():
    import errno

    raise OSError(errno.ENOSPC, "no space left on device")


def _fail_first_time(sentinel_path):
    """Crashes on the first attempt, succeeds on the second."""
    if os.path.exists(sentinel_path):
        return "recovered"
    with open(sentinel_path, "w") as handle:
        handle.write("attempt 1")
    os._exit(1)


class TestHappyPath:
    def test_results_keyed_and_ordered(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task(str(n), _square, (n,)) for n in range(5)])
        assert set(run.outcomes) == {str(n) for n in range(5)}
        for n in range(5):
            outcome = run.outcomes[str(n)]
            assert isinstance(outcome, TaskResult)
            assert outcome.value == n * n
            assert outcome.attempts == 1

    def test_peak_workers_bounded(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task(str(n), _sleep, (0.05,)) for n in range(4)])
        assert 1 <= run.peak_workers <= 2

    def test_empty_task_list(self):
        run = TaskPool(max_workers=2).run([])
        assert run.outcomes == {}


class TestFailureModes:
    def test_exception_recorded_with_traceback(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task("bad", _raise, ("kaput",))])
        outcome = run.outcomes["bad"]
        assert isinstance(outcome, TaskError)
        assert "ValueError: kaput" in outcome.error
        assert outcome.attempts == 1

    def test_hard_crash_recorded_not_raised(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task("crash", _hard_exit, (3,))])
        outcome = run.outcomes["crash"]
        assert isinstance(outcome, TaskError)
        assert "exit code" in outcome.error

    def test_one_failure_does_not_sink_the_rest(self):
        pool = TaskPool(max_workers=2, retries=0)
        tasks = [Task("ok1", _square, (3,)), Task("bad", _hard_exit, (1,)),
                 Task("ok2", _square, (4,))]
        run = pool.run(tasks)
        assert isinstance(run.outcomes["bad"], TaskError)
        assert run.outcomes["ok1"].value == 9
        assert run.outcomes["ok2"].value == 16

    def test_enospc_is_a_structured_kind(self):
        # Disk-full is operationally distinct from a code bug: the
        # kind maps to errors.DiskFull, not a generic traceback.
        from repro.errors import DiskFull, error_for_kind

        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task("full", _out_of_space, ())])
        outcome = run.outcomes["full"]
        assert isinstance(outcome, TaskError)
        assert outcome.kind == "enospc"
        assert error_for_kind(outcome.kind) is DiskFull

    def test_timeout_terminates_hung_worker(self):
        pool = TaskPool(max_workers=1, timeout=0.3, retries=0)
        start = time.monotonic()
        run = pool.run([Task("hung", _sleep, (30.0,))])
        elapsed = time.monotonic() - start
        outcome = run.outcomes["hung"]
        assert isinstance(outcome, TaskError)
        assert outcome.timed_out
        assert "timed out" in outcome.error
        assert elapsed < 10.0  # nowhere near the 30s sleep


class TestRetry:
    def test_retry_recovers_transient_crash(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        pool = TaskPool(max_workers=1, retries=1)
        run = pool.run([Task("flaky", _fail_first_time, (sentinel,))])
        outcome = run.outcomes["flaky"]
        assert isinstance(outcome, TaskResult)
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_attempts_exhausted(self):
        pool = TaskPool(max_workers=1, retries=2)
        run = pool.run([Task("bad", _raise, ("always",))])
        outcome = run.outcomes["bad"]
        assert isinstance(outcome, TaskError)
        assert outcome.attempts == 3

    def test_timeout_consumes_attempts(self):
        pool = TaskPool(max_workers=1, timeout=0.2, retries=1)
        run = pool.run([Task("hung", _sleep, (30.0,))])
        outcome = run.outcomes["hung"]
        assert isinstance(outcome, TaskError)
        assert outcome.timed_out
        assert outcome.attempts == 2


class TestPoolRunViews:
    def test_results_and_errors_split(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task("ok", _square, (2,)),
                        Task("bad", _raise, ("x",))])
        assert set(run.results()) == {"ok"}
        assert set(run.errors()) == {"bad"}
        assert run.wall_time > 0.0


class _FakeClock:
    """Deterministic time source; sleeping advances it."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(seconds, 0.001)


class _ZeroJitter:
    @staticmethod
    def uniform(low, high):
        return 0.0


class _FullJitter:
    @staticmethod
    def uniform(low, high):
        return high


class TestBackoff:
    def test_delays_double_up_to_the_cap(self):
        pool = TaskPool(max_workers=1, backoff_base=0.5, backoff_cap=4.0,
                        rng=_ZeroJitter())
        assert [pool._backoff(n) for n in (1, 2, 3, 4, 5)] == \
            [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_jitter_adds_at_most_the_base_again(self):
        pool = TaskPool(max_workers=1, backoff_base=0.5, backoff_cap=4.0,
                        rng=_FullJitter())
        assert pool._backoff(1) == 1.0
        assert pool._backoff(3) == 4.0

    def test_retries_are_spaced_by_backoff(self):
        """Fake-clock run: total backoff = base + 2*base, no jitter."""
        clock = _FakeClock()
        pool = TaskPool(
            max_workers=1, retries=2, backoff_base=1.0, backoff_cap=8.0,
            clock=clock, sleep=clock.sleep, rng=_ZeroJitter(),
        )
        with recording(Recorder()) as rec:
            run = pool.run([Task("bad", _raise, ("always",))])
        outcome = run.outcomes["bad"]
        assert isinstance(outcome, TaskError)
        assert outcome.attempts == 3
        counters = rec.snapshot()["counters"]
        assert counters["pool.retries"] == 2
        assert counters["pool.backoff_seconds"] == 1.0 + 2.0
        # The fake clock really waited out both delays.
        assert clock.now >= 3.0


_PARENT_PID = os.getpid()


def _crash_unless_inline():
    """Dies in a worker process; succeeds when run in the parent."""
    if os.getpid() == _PARENT_PID:
        return "inline"
    os._exit(9)


class TestSerialFallback:
    def test_repeated_crashes_degrade_to_inline(self):
        pool = TaskPool(max_workers=2, retries=4, degrade_after=2,
                        backoff_base=0.001)
        with recording(Recorder()) as rec:
            run = pool.run([Task(f"t{n}", _crash_unless_inline)
                            for n in range(3)])
        assert run.degraded
        for n in range(3):
            outcome = run.outcomes[f"t{n}"]
            assert isinstance(outcome, TaskResult)
            assert outcome.value == "inline"
        counters = rec.snapshot()["counters"]
        assert counters["pool.serial_fallback"] == 1
        assert counters["pool.inline_runs"] >= 3

    def test_healthy_pool_never_degrades(self):
        run = TaskPool(max_workers=2, retries=0).run(
            [Task(str(n), _square, (n,)) for n in range(4)]
        )
        assert not run.degraded


class TestNoZombies:
    def test_workers_are_reaped_after_crashes_and_timeouts(self):
        pool = TaskPool(max_workers=2, timeout=0.3, retries=1,
                        backoff_base=0.001)
        pool.run([
            Task("crash", _hard_exit, (1,)),
            Task("hung", _sleep, (30.0,)),
            Task("ok", _square, (2,)),
        ])
        leftover = multiprocessing.active_children()
        for process in leftover:  # pragma: no cover - cleanup on failure
            process.kill()
        assert leftover == []


class _SetAfterCalls:
    """Event-alike that trips after ``n`` is_set() polls."""

    def __init__(self, n):
        self.n = n

    def is_set(self) -> bool:
        self.n -= 1
        return self.n < 0


class TestCancellation:
    def test_preset_cancel_runs_nothing(self):
        class _Set:
            @staticmethod
            def is_set():
                return True

        run = TaskPool(max_workers=2).run(
            [Task(str(n), _square, (n,)) for n in range(4)], cancel=_Set()
        )
        assert run.cancelled
        assert run.outcomes == {}

    def test_cancel_mid_run_drains_in_flight(self):
        run = TaskPool(max_workers=1, poll_interval=0.01).run(
            [Task(str(n), _sleep, (0.1,)) for n in range(6)],
            cancel=_SetAfterCalls(2),
        )
        assert run.cancelled
        # Something finished (drained), something never launched.
        assert 0 < len(run.outcomes) < 6
        assert all(isinstance(outcome, TaskResult)
                   for outcome in run.outcomes.values())
