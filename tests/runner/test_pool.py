"""Task pool: parallel execution, timeout, retry, crash isolation.

Worker functions must be module-level so they survive the trip into a
worker process under any start method.
"""

import os
import time

from repro.runner import Task, TaskError, TaskPool, TaskResult


def _square(x):
    return x * x


def _raise(message):
    raise ValueError(message)


def _hard_exit(code):
    os._exit(code)


def _sleep(seconds):
    time.sleep(seconds)
    return "woke"


def _fail_first_time(sentinel_path):
    """Crashes on the first attempt, succeeds on the second."""
    if os.path.exists(sentinel_path):
        return "recovered"
    with open(sentinel_path, "w") as handle:
        handle.write("attempt 1")
    os._exit(1)


class TestHappyPath:
    def test_results_keyed_and_ordered(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task(str(n), _square, (n,)) for n in range(5)])
        assert set(run.outcomes) == {str(n) for n in range(5)}
        for n in range(5):
            outcome = run.outcomes[str(n)]
            assert isinstance(outcome, TaskResult)
            assert outcome.value == n * n
            assert outcome.attempts == 1

    def test_peak_workers_bounded(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task(str(n), _sleep, (0.05,)) for n in range(4)])
        assert 1 <= run.peak_workers <= 2

    def test_empty_task_list(self):
        run = TaskPool(max_workers=2).run([])
        assert run.outcomes == {}


class TestFailureModes:
    def test_exception_recorded_with_traceback(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task("bad", _raise, ("kaput",))])
        outcome = run.outcomes["bad"]
        assert isinstance(outcome, TaskError)
        assert "ValueError: kaput" in outcome.error
        assert outcome.attempts == 1

    def test_hard_crash_recorded_not_raised(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task("crash", _hard_exit, (3,))])
        outcome = run.outcomes["crash"]
        assert isinstance(outcome, TaskError)
        assert "exit code" in outcome.error

    def test_one_failure_does_not_sink_the_rest(self):
        pool = TaskPool(max_workers=2, retries=0)
        tasks = [Task("ok1", _square, (3,)), Task("bad", _hard_exit, (1,)),
                 Task("ok2", _square, (4,))]
        run = pool.run(tasks)
        assert isinstance(run.outcomes["bad"], TaskError)
        assert run.outcomes["ok1"].value == 9
        assert run.outcomes["ok2"].value == 16

    def test_timeout_terminates_hung_worker(self):
        pool = TaskPool(max_workers=1, timeout=0.3, retries=0)
        start = time.monotonic()
        run = pool.run([Task("hung", _sleep, (30.0,))])
        elapsed = time.monotonic() - start
        outcome = run.outcomes["hung"]
        assert isinstance(outcome, TaskError)
        assert outcome.timed_out
        assert "timed out" in outcome.error
        assert elapsed < 10.0  # nowhere near the 30s sleep


class TestRetry:
    def test_retry_recovers_transient_crash(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        pool = TaskPool(max_workers=1, retries=1)
        run = pool.run([Task("flaky", _fail_first_time, (sentinel,))])
        outcome = run.outcomes["flaky"]
        assert isinstance(outcome, TaskResult)
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_attempts_exhausted(self):
        pool = TaskPool(max_workers=1, retries=2)
        run = pool.run([Task("bad", _raise, ("always",))])
        outcome = run.outcomes["bad"]
        assert isinstance(outcome, TaskError)
        assert outcome.attempts == 3

    def test_timeout_consumes_attempts(self):
        pool = TaskPool(max_workers=1, timeout=0.2, retries=1)
        run = pool.run([Task("hung", _sleep, (30.0,))])
        outcome = run.outcomes["hung"]
        assert isinstance(outcome, TaskError)
        assert outcome.timed_out
        assert outcome.attempts == 2


class TestPoolRunViews:
    def test_results_and_errors_split(self):
        pool = TaskPool(max_workers=2, retries=0)
        run = pool.run([Task("ok", _square, (2,)),
                        Task("bad", _raise, ("x",))])
        assert set(run.results()) == {"ok"}
        assert set(run.errors()) == {"bad"}
        assert run.wall_time > 0.0
