"""End-to-end runner behaviour: suites, caching, faults, CLI parity."""

import multiprocessing

import pytest

from repro.errors import RunnerError
from repro.report import experiments as report_experiments
from repro.report.experiments import figure5, figure9, table1
from repro.runner import (
    ExperimentConfig,
    ExperimentRunner,
    ResultStore,
)
from repro.runner import api as runner_api
from repro.runner.api import _analyze
from repro.workloads import suite as suite_module
from repro.workloads.suite import Workload

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

SMALL = ExperimentConfig(max_instructions=3_000, workloads=("com", "go"))


def _crashing_analyze(name, config, engine=None):
    if name == "go":
        raise RuntimeError("injected analysis fault")
    return _analyze(name, config, engine)


@pytest.fixture
def faulty_workload(monkeypatch):
    """Registers 'bad': a workload whose input generator explodes."""

    def explode(scale):
        raise RuntimeError("injected input fault")

    workload = Workload("bad", "999.bad", "int", "always fails", explode,
                        source_file=suite_module.SUITE[0].source_path)
    monkeypatch.setitem(suite_module._BY_NAME, "bad", workload)
    return workload


class TestSerialRunner:
    def test_suite_run_and_memo_identity(self, tmp_path):
        runner = ExperimentRunner(store=ResultStore(tmp_path))
        first = runner.run(SMALL).require()
        second = runner.run(SMALL).require()
        assert list(first) == ["com", "go"]
        assert first["com"] is second["com"]

    def test_warm_store_skips_retracing(self, tmp_path):
        store_root = tmp_path / "store"
        cold = ExperimentRunner(store=ResultStore(store_root)).run(SMALL)
        assert cold.metrics.count("computed") == 2
        # A fresh runner (empty memo, same store) re-traces nothing.
        warm = ExperimentRunner(store=ResultStore(store_root)).run(SMALL)
        assert warm.metrics.count("computed") == 0
        assert warm.metrics.count("cache-hit") == 2
        assert warm.require()["com"] == cold.require()["com"]

    def test_no_store_runner_still_memoises(self):
        runner = ExperimentRunner(store=None)
        first = runner.run(SMALL).require()
        assert runner.run(SMALL).require()["go"] is first["go"]

    def test_faulty_workload_does_not_sink_suite(self, faulty_workload):
        config = ExperimentConfig(
            max_instructions=2_000, workloads=("com", "bad", "go")
        )
        run = ExperimentRunner(store=None).run(config)
        assert set(run.results) == {"com", "go"}
        assert set(run.failures) == {"bad"}
        assert "injected input fault" in run.failures["bad"].error
        with pytest.raises(RunnerError, match="1 job\\(s\\) failed"):
            run.require()

    def test_unknown_workload_raises_immediately(self):
        runner = ExperimentRunner(store=None)
        config = ExperimentConfig(workloads=("com", "nope"))
        with pytest.raises(KeyError, match="unknown workload"):
            runner.run(config)


@pytest.mark.slow
class TestParallelRunner:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        serial = {
            name: _analyze(name, SMALL) for name in SMALL.workloads
        }
        runner = ExperimentRunner(store=ResultStore(tmp_path), jobs=2)
        parallel = runner.run(SMALL).require()
        assert table1(serial).render() == table1(parallel).render()
        assert figure5(serial).render() == figure5(parallel).render()
        # Figure 9 breaks ranking ties by Counter insertion order: the
        # store round trip must preserve it, not just the counts.
        for serial_table, parallel_table in zip(figure9(serial),
                                                figure9(parallel)):
            assert serial_table.render() == parallel_table.render()

    def test_parallel_without_store_uses_scratch_transport(self):
        runner = ExperimentRunner(store=None, jobs=2)
        run = runner.run(SMALL)
        assert set(run.require()) == {"com", "go"}
        assert run.metrics.peak_workers >= 1

    def test_per_job_timeout_records_failure(self, tmp_path):
        config = ExperimentConfig(
            max_instructions=200_000, workloads=("com", "go")
        )
        runner = ExperimentRunner(
            store=ResultStore(tmp_path), jobs=2, timeout=0.05, retries=0,
        )
        run = runner.run(config)
        assert run.failures
        assert all(f.timed_out for f in run.failures.values())

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_injected_child_fault_spares_siblings(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setattr(runner_api, "_analyze", _crashing_analyze)
        runner = ExperimentRunner(
            store=ResultStore(tmp_path), jobs=2, retries=0,
        )
        run = runner.run(SMALL)
        assert set(run.results) == {"com"}
        assert set(run.failures) == {"go"}
        assert "injected analysis fault" in run.failures["go"].error
        assert run.metrics.failures == 1


class TestReportIntegration:
    def test_run_workload_uses_shared_runner(self):
        config = ExperimentConfig(max_instructions=2_000)
        first = report_experiments.run_workload("com", config)
        second = report_experiments.run_workload("com", config)
        assert first is second

    def test_run_suite_order_matches_request(self):
        config = ExperimentConfig(
            max_instructions=2_000, workloads=("go", "com")
        )
        results = report_experiments.run_suite(config)
        assert list(results) == ["go", "com"]


class TestRunnerCli:
    def test_cli_runs_and_writes_metrics(self, tmp_path, capsys):
        from repro.runner.__main__ import main

        cache = tmp_path / "cache"
        code = main([
            "--jobs", "2", "--workloads", "com,go",
            "--max-instructions", "2000", "--cache-dir", str(cache),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "com" in out and "go" in out and "computed" in out
        assert (cache / "metrics.json").is_file()

    def test_cli_second_run_is_all_hits(self, tmp_path, capsys):
        from repro.runner.__main__ import main

        cache = tmp_path / "cache"
        argv = ["--jobs", "2", "--workloads", "com,go",
                "--max-instructions", "2000", "--cache-dir", str(cache)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache-hit" in out
        assert "0 computed" in out

    def test_cli_cache_info_and_clear(self, tmp_path, capsys):
        from repro.runner.__main__ import main

        cache = tmp_path / "cache"
        main(["--workloads", "com", "--max-instructions", "1000",
              "--cache-dir", str(cache), "--jobs", "1"])
        capsys.readouterr()
        assert main(["--cache-info", "--cache-dir", str(cache)]) == 0
        assert "entries: 1" in capsys.readouterr().out
        assert main(["--clear-cache", "--cache-dir", str(cache)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_report_cli_accepts_jobs_flag(self, capsys):
        from repro.report.__main__ import main

        code = main([
            "--exhibit", "table1", "--max-instructions", "1000",
            "--workloads", "com", "--jobs", "1",
        ])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
