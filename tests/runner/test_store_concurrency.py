"""Concurrent multi-process store access: readers racing writers
racing the LRU pruner must never corrupt, crash or leak temp files.

Worker functions are module-level so they survive the trip into a
worker process under any start method.
"""

import multiprocessing
import os

from repro.runner import ResultStore

KEYS = [f"{index:02x}" + "0" * 62 for index in range(8)]


def _hammer_writer(root, worker_id, rounds, error_queue):
    """Re-put every key, forcing eviction churn on a tiny cap."""
    try:
        store = ResultStore(root, max_bytes=4096)
        for round_no in range(rounds):
            for key in KEYS:
                store.put(key, {"worker": worker_id, "round": round_no,
                                "key": key, "pad": "x" * 256})
    except Exception as error:  # pragma: no cover - the assertion target
        error_queue.put(f"writer {worker_id}: {type(error).__name__}: "
                        f"{error}")


def _hammer_reader(root, rounds, error_queue):
    """Read every key; each get must be a valid payload or a miss."""
    try:
        store = ResultStore(root, max_bytes=4096)
        for __ in range(rounds):
            for key in KEYS:
                payload = store.get(key)
                if payload is not None and payload["key"] != key:
                    error_queue.put(f"reader: wrong payload under {key}")
                    return
    except Exception as error:  # pragma: no cover - the assertion target
        error_queue.put(f"reader: {type(error).__name__}: {error}")


def _hammer_pruner(root, rounds, error_queue):
    """Evict aggressively while the others churn."""
    try:
        store = ResultStore(root, max_bytes=1024)
        for __ in range(rounds):
            store.evict()
    except Exception as error:  # pragma: no cover - the assertion target
        error_queue.put(f"pruner: {type(error).__name__}: {error}")


def _spawn_all(targets):
    context = multiprocessing.get_context()
    errors = context.Queue()
    processes = [
        context.Process(target=fn, args=(*args, errors), daemon=True)
        for fn, args in targets
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    failures = []
    while not errors.empty():
        failures.append(errors.get())
    return processes, failures


class TestConcurrentAccess:
    def test_writers_readers_and_pruner_coexist(self, tmp_path):
        root = str(tmp_path)
        ResultStore(root).put(KEYS[0], {"key": KEYS[0], "seed": True})
        processes, failures = _spawn_all([
            (_hammer_writer, (root, 1, 30)),
            (_hammer_writer, (root, 2, 30)),
            (_hammer_reader, (root, 60)),
            (_hammer_pruner, (root, 120)),
        ])
        assert failures == []
        assert all(process.exitcode == 0 for process in processes)
        # Atomic replace means no partially-written temp files survive.
        assert list(tmp_path.rglob("*.tmp")) == []
        # Whatever survived the churn still round-trips.
        store = ResultStore(root)
        for key in KEYS:
            payload = store.get(key)
            assert payload is None or payload["key"] == key

    def test_prune_racing_a_reader_never_corrupts(self, tmp_path):
        root = str(tmp_path)
        store = ResultStore(root)
        for key in KEYS:
            store.put(key, {"key": key, "pad": "y" * 128})
        processes, failures = _spawn_all([
            (_hammer_reader, (root, 200)),
            (_hammer_pruner, (root, 200)),
        ])
        assert failures == []
        assert all(process.exitcode == 0 for process in processes)

    def test_eviction_keeps_the_newest_entry(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=512)
        last = None
        for index, key in enumerate(KEYS):
            path = store.put(key, {"key": key, "pad": "z" * 200})
            stamp = 1_600_000_000 + index
            os.utime(path, (stamp, stamp))
            last = key
        store.evict()
        assert store.contains(last)
