"""Engine selection through the runner and the public API.

The analysis engine is an execution detail: it must never enter job
identity (switching engines hits the same caches), a configured
default must reach both serial paths and pool workers, and fallback /
forced-failure semantics must surface exactly as documented in
docs/kernel.md.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.core import AnalysisEngine, KernelUnsupportedError
from repro.core.export import result_to_dict
from repro.core.kernel import TraceColumns, set_default_engine
from repro.runner import (
    ExperimentConfig,
    ExperimentRunner,
    Job,
    ResultStore,
    TraceStore,
    job_key,
    reset_default_runner,
    trace_key,
)

CONFIG = ExperimentConfig(workloads=("com",), max_instructions=3_000)

#: Five banks overflow the kernel's combo byte — the one unsupported
#: shape reachable through ExperimentConfig.
FIVE_BANKS = ExperimentConfig(
    workloads=("com",), max_instructions=3_000,
    predictors=("last", "stride", "context", "hybrid", "last(bits=8)"),
)


@pytest.fixture(autouse=True)
def _restore_engine_default():
    yield
    set_default_engine(AnalysisEngine.AUTO)
    reset_default_runner()


def _dump(result) -> str:
    return json.dumps(result_to_dict(result))


def test_engine_not_part_of_job_identity():
    key = job_key(Job("com", CONFIG))
    for engine in ("auto", "columnar", "reference", None):
        runner = ExperimentRunner(engine=engine)
        assert job_key(Job("com", CONFIG)) == key, engine


def test_cross_engine_cache_sharing(tmp_path):
    producer = ExperimentRunner(
        store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        engine="columnar",
    )
    run = producer.run(CONFIG)
    assert not run.failures
    consumer = ExperimentRunner(
        store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        engine="reference",
    )
    warm = consumer.run(CONFIG)
    assert [m.status for m in warm.metrics.jobs] == ["cache-hit"]
    assert _dump(warm.results["com"]) == _dump(run.results["com"])


def test_engines_agree_through_runner(tmp_path):
    results = {}
    for engine in ("columnar", "reference"):
        runner = ExperimentRunner(
            store=None, trace_store=TraceStore(tmp_path / engine),
            engine=engine,
        )
        run = runner.run(CONFIG)
        assert not run.failures, run.failures
        results[engine] = _dump(run.results["com"])
    assert results["columnar"] == results["reference"]


def test_warm_replay_feeds_columns(tmp_path):
    trace_store = TraceStore(tmp_path)
    runner = ExperimentRunner(store=None, trace_store=trace_store,
                              engine="columnar")
    cold = runner.run(CONFIG)
    assert not cold.failures
    key = trace_key("com", CONFIG.scale)
    stored = trace_store.get(key, CONFIG.max_instructions, columns=True)
    assert stored is not None
    __, columns = stored
    assert isinstance(columns, TraceColumns)
    runner.clear_memo()
    warm = runner.run(CONFIG)
    assert [m.status for m in warm.metrics.jobs] == ["replayed"]
    assert _dump(warm.results["com"]) == _dump(cold.results["com"])


def test_auto_falls_back_for_unsupported_config(tmp_path):
    auto = ExperimentRunner(store=None,
                            trace_store=TraceStore(tmp_path / "a"),
                            engine="auto", observe=True)
    run = auto.run(FIVE_BANKS)
    assert not run.failures, run.failures
    assert run.metrics.profile["counters"].get("analyze.fallback", 0) >= 1
    reference = ExperimentRunner(store=None,
                                 trace_store=TraceStore(tmp_path / "b"),
                                 engine="reference")
    ref_run = reference.run(FIVE_BANKS)
    assert _dump(run.results["com"]) == _dump(ref_run.results["com"])


def test_forced_columnar_fails_unsupported_job():
    runner = ExperimentRunner(engine="columnar")
    run = runner.run(FIVE_BANKS)
    assert "com" in run.failures
    assert "KernelUnsupportedError" in run.failures["com"].error


def test_parallel_workers_inherit_engine(tmp_path):
    config = ExperimentConfig(workloads=("com", "go"),
                              max_instructions=3_000)
    runner = ExperimentRunner(
        store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        jobs=2, engine="reference",
    )
    run = runner.run(config, jobs=2)
    assert not run.failures, run.failures
    serial = ExperimentRunner(store=None, engine="columnar")
    for name in ("com", "go"):
        assert _dump(run.results[name]) == _dump(
            serial.run_one(name, ExperimentConfig(workloads=(name,),
                                                  max_instructions=3_000))
        )


def test_configure_sets_engine(tmp_path):
    runner = api.configure(cache_dir=tmp_path, engine="reference")
    assert runner.engine is AnalysisEngine.REFERENCE
    from repro.core import get_default_engine
    assert get_default_engine() is AnalysisEngine.REFERENCE
    # Settings not passed are inherited; engine=None restores auto.
    runner = api.configure(engine=None)
    assert runner.engine is None
    assert get_default_engine() is AnalysisEngine.AUTO


def test_runner_rejects_unknown_engine():
    with pytest.raises(ValueError):
        ExperimentRunner(engine="simd")
