"""Two-tier execution: replay equivalence and config-sweep fan-out."""

import json

import pytest

from repro.core import AnalysisConfig, analyze_many, analyze_trace
from repro.core.export import result_to_dict
from repro.errors import RunnerError
from repro.runner import (
    ExperimentConfig,
    ExperimentRunner,
    ExperimentRun,
    JobFailure,
    ResultStore,
    TraceStore,
)
from repro.runner.api import _analyze, _capture
from repro.workloads import SUITE

BUDGET = 1_500


def _dump(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestReplayEquivalence:
    """A stored-and-reloaded trace must analyse byte-identically."""

    @pytest.mark.parametrize("name", [w.name for w in SUITE])
    def test_replay_matches_direct_simulation(self, tmp_path, name):
        config = ExperimentConfig(
            max_instructions=BUDGET, workloads=(name,)
        )
        direct = _analyze(name, config)

        trace_store = TraceStore(tmp_path)
        runner = ExperimentRunner(
            store=ResultStore(tmp_path / "r1"), trace_store=trace_store,
        )
        captured = runner.run(config).require()[name]
        assert _dump(captured) == _dump(direct)

        # Fresh result store, warm trace store: forced replay.
        replay_runner = ExperimentRunner(
            store=ResultStore(tmp_path / "r2"), trace_store=trace_store,
        )
        run = replay_runner.run(config)
        assert [m.status for m in run.metrics.jobs] == ["replayed"]
        assert _dump(run.require()[name]) == _dump(direct)


class TestAnalyzeMany:
    """One pass over the trace == N independent analyses."""

    @pytest.fixture(scope="class")
    def trace(self):
        config = ExperimentConfig(max_instructions=4_000)
        n_static, records, __ = _capture("com", config, 4_000)
        return n_static, records

    def test_matches_independent_runs(self, trace):
        n_static, records = trace
        configs = [
            AnalysisConfig(max_instructions=4_000),
            AnalysisConfig(predictors=("last",), max_instructions=4_000),
            AnalysisConfig(predictors=("stride",), gshare_bits=6,
                           max_instructions=4_000),
        ]
        fanned = analyze_many(iter(records), n_static, configs, name="com")
        for config, got in zip(configs, fanned):
            want = analyze_trace(iter(records), n_static, name="com",
                                 config=config)
            assert _dump(got) == _dump(want)

    def test_mixed_budgets_truncate_per_config(self, trace):
        n_static, records = trace
        configs = [
            AnalysisConfig(max_instructions=1_000),
            AnalysisConfig(max_instructions=3_000),
            AnalysisConfig(max_instructions=None),
        ]
        fanned = analyze_many(iter(records), n_static, configs, name="com")
        for config, got in zip(configs, fanned):
            want = analyze_trace(iter(records), n_static, name="com",
                                 config=config)
            assert _dump(got) == _dump(want)

    def test_empty_config_list(self, trace):
        n_static, records = trace
        assert analyze_many(iter(records), n_static, [], name="com") == []


class TestRunMany:
    CONFIGS = [
        ExperimentConfig(max_instructions=2_000, workloads=("com", "go")),
        ExperimentConfig(max_instructions=2_000, workloads=("com", "go"),
                         predictors=("last",)),
        ExperimentConfig(max_instructions=1_200, workloads=("com",),
                         predictors=("stride",)),
    ]

    def test_sweep_matches_independent_runs(self, tmp_path):
        runner = ExperimentRunner(
            store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        )
        runs = runner.run_many(self.CONFIGS)
        assert len(runs) == len(self.CONFIGS)
        for config, run in zip(self.CONFIGS, runs):
            results = run.require()
            assert tuple(results) == config.workloads
            for name, got in results.items():
                assert _dump(got) == _dump(_analyze(name, config))

    def test_sweep_simulates_each_workload_once(self, tmp_path):
        trace_store = TraceStore(tmp_path)
        runner = ExperimentRunner(
            store=ResultStore(tmp_path), trace_store=trace_store,
        )
        runner.run_many(self.CONFIGS)
        # Two distinct executions (com, go) -> two stored traces, and
        # the sweep's extra configs never re-captured them.
        assert len(trace_store.entries()) == 2

    def test_second_sweep_is_all_hits(self, tmp_path):
        runner = ExperimentRunner(
            store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        )
        runner.run_many(self.CONFIGS)
        warm = ExperimentRunner(
            store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        )
        runs = warm.run_many(self.CONFIGS)
        statuses = [m.status for run in runs for m in run.metrics.jobs]
        assert set(statuses) == {"cache-hit"}

    def test_new_config_after_sweep_replays(self, tmp_path):
        runner = ExperimentRunner(
            store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        )
        runner.run_many(self.CONFIGS)
        fresh = ExperimentRunner(
            store=ResultStore(tmp_path / "other"),
            trace_store=TraceStore(tmp_path),
        )
        config = ExperimentConfig(
            max_instructions=1_800, workloads=("com", "go"),
            predictors=("context",),
        )
        [run] = fresh.run_many([config])
        assert [m.status for m in run.metrics.jobs] == ["replayed"] * 2
        assert run.metrics.replays == 2

    def test_sweep_failure_spares_other_configs(self, tmp_path,
                                                monkeypatch):
        from repro.workloads import suite as suite_module
        from repro.workloads.suite import Workload

        def explode(scale):
            raise RuntimeError("injected input fault")

        bad = Workload("bad", "999.bad", "int", "always fails", explode,
                       source_file=suite_module.SUITE[0].source_path)
        monkeypatch.setitem(suite_module._BY_NAME, "bad", bad)

        configs = [
            ExperimentConfig(max_instructions=1_200,
                             workloads=("com", "bad")),
            ExperimentConfig(max_instructions=1_200, workloads=("com",),
                             predictors=("last",)),
        ]
        runner = ExperimentRunner(store=None, trace_store=None)
        runs = runner.run_many(configs)
        assert set(runs[0].failures) == {"bad"}
        assert set(runs[0].results) == {"com"}
        assert runs[1].require()  # unaffected config still succeeds

    @pytest.mark.slow
    def test_parallel_sweep_matches_serial(self, tmp_path):
        serial = ExperimentRunner(
            store=ResultStore(tmp_path / "s"),
            trace_store=TraceStore(tmp_path / "s"),
        ).run_many(self.CONFIGS)
        parallel = ExperimentRunner(
            store=ResultStore(tmp_path / "p"),
            trace_store=TraceStore(tmp_path / "p"), jobs=2,
        ).run_many(self.CONFIGS, jobs=2)
        for left, right in zip(serial, parallel):
            for name in left.require():
                assert _dump(left.results[name]) == \
                    _dump(right.require()[name])


class TestRequireBugfix:
    def test_empty_error_string_still_raises_runner_error(self):
        run = ExperimentRun()
        run.failures["com"] = JobFailure(workload="com", error="")
        with pytest.raises(RunnerError, match="com: unknown"):
            run.require()

    def test_whitespace_error_string_still_raises_runner_error(self):
        run = ExperimentRun()
        run.failures["com"] = JobFailure(workload="com", error="  \n ")
        with pytest.raises(RunnerError, match="1 job\\(s\\) failed"):
            run.require()
