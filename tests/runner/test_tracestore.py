"""Trace store: replay adequacy, corruption recovery, LRU bounding."""

import gzip
import os

from repro.cpu.trace import DynInst, Source
from repro.isa.opcodes import Category
from repro.runner.tracestore import TraceStore

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


def _records(n, pc=3):
    out = []
    for uid in range(n):
        out.append(DynInst(
            uid=uid, pc=pc, op="addi", category=Category.ALU,
            has_imm=True,
            srcs=(Source(uid, uid - 1 if uid else None,
                         pc if uid else None, False, 0),),
            out=uid + 1,
        ))
    return out


class TestStoreBasics:
    def test_miss_then_hit(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get(KEY_A, 2) is None
        store.put(KEY_A, _records(5), n_static=8, complete=True)
        header, records = store.get(KEY_A, 2)
        assert records == _records(5)
        assert header["n_static"] == 8
        assert store.hits == 1 and store.misses == 1

    def test_header_reports_counts_and_completeness(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY_A, _records(4), n_static=6, complete=False)
        header = store.header(KEY_A)
        assert header["n_records"] == 4
        assert header["complete"] is False
        assert header["counts"][3] == 4
        assert store.header(KEY_B) is None

    def test_results_and_traces_do_not_collide(self, tmp_path):
        # Both tiers share one root directory in the default layout.
        from repro.runner import ResultStore

        results = ResultStore(tmp_path)
        traces = TraceStore(tmp_path)
        results.put(KEY_A, {"x": 1})
        traces.put(KEY_A, _records(2), n_static=4, complete=True)
        assert len(results.entries()) == 1
        assert len(traces.entries()) == 1
        assert results.get(KEY_A) == {"x": 1}


class TestAdequacy:
    """A stored trace only replays when it covers the requested budget."""

    def test_complete_trace_serves_any_budget(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY_A, _records(5), n_static=8, complete=True)
        assert store.get(KEY_A, 1_000_000) is not None
        assert store.get(KEY_A, None) is not None

    def test_incomplete_trace_serves_only_shorter_budgets(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY_A, _records(5), n_static=8, complete=False)
        assert store.get(KEY_A, 5) is not None
        assert store.get(KEY_A, 6) is None
        assert store.get(KEY_A, None) is None

    def test_recapture_overwrites(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY_A, _records(3), n_static=8, complete=False)
        store.put(KEY_A, _records(7), n_static=8, complete=True)
        header, records = store.get(KEY_A, None)
        assert len(records) == 7
        assert len(store.entries()) == 1


class TestCorruption:
    def test_truncated_file_is_a_miss_and_removed(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.put(KEY_A, _records(50), n_static=8, complete=True)
        path.write_bytes(path.read_bytes()[:40])
        assert store.get(KEY_A, 1) is None
        assert not path.exists()

    def test_garbage_file_is_a_miss_and_removed(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.path_for(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_bytes(gzip.compress(b"not a trace at all"))
        assert store.get(KEY_A, 1) is None
        assert not path.exists()
        assert store.header(KEY_A) is None

    def test_short_but_valid_trace_is_not_removed(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.put(KEY_A, _records(3), n_static=8, complete=False)
        assert store.get(KEY_A, 100) is None
        assert path.exists()


class TestEviction:
    def test_lru_bounded(self, tmp_path):
        store = TraceStore(tmp_path, max_bytes=1)
        store.put(KEY_A, _records(10), n_static=8, complete=True)
        first = store.path_for(KEY_A)
        os.utime(first, (1, 1))
        store.put(KEY_B, _records(10), n_static=8, complete=True)
        assert not first.exists()
        assert store.get(KEY_B, 1) is not None

    def test_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY_A, _records(2), n_static=4, complete=True)
        store.put(KEY_B, _records(2), n_static=4, complete=True)
        assert store.clear() == 2
        assert store.entries() == []


class _FakeIndex:
    def to_bytes(self) -> bytes:
        return b"fake-index-bytes"


class TestSegidxLifecycle:
    """Sidecars are pure derived data: never orphaned, never load-bearing."""

    def test_put_refuses_to_publish_an_orphan(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.put_segindex(KEY_A, _FakeIndex()) is None
        assert store.segidx_entries() == []

    def test_eviction_cascades_to_the_sidecar(self, tmp_path):
        store = TraceStore(tmp_path, max_bytes=1)
        store.put(KEY_A, _records(10), n_static=8, complete=True)
        sidecar = store.path_for_segidx(KEY_A)
        sidecar.write_bytes(b"x")
        os.utime(store.path_for(KEY_A), (1, 1))
        store.put(KEY_B, _records(10), n_static=8, complete=True)
        assert not store.path_for(KEY_A).exists()
        assert not sidecar.exists()

    def test_orphans_are_listed_and_swept(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY_A, _records(3), n_static=4, complete=True)
        live = store.path_for_segidx(KEY_A)
        live.write_bytes(b"x")
        # Vandalise: remove KEY_B's trace behind the store's back.
        store.put(KEY_B, _records(3), n_static=4, complete=True)
        orphan = store.path_for_segidx(KEY_B)
        orphan.write_bytes(b"y")
        os.unlink(store.path_for(KEY_B))
        assert store.orphan_segidx() == [orphan]
        assert store.sweep_orphan_segidx() == 1
        assert not orphan.exists()
        assert live.exists()            # the live sidecar is untouched
        assert store.sweep_orphan_segidx() == 0
