"""Store scrubbing: seeded corruption is quarantined, never deleted."""

import json

import pytest

from repro.cpu.trace import DynInst, Source
from repro.isa.opcodes import Category
from repro.runner import ResultStore, TraceStore
from repro.runner.scrub import QUARANTINE_DIR, scrub_store

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62
KEY_D = "dd" + "0" * 62


def _records(n, pc=3):
    out = []
    for uid in range(n):
        out.append(DynInst(
            uid=uid, pc=pc, op="addi", category=Category.ALU,
            has_imm=True,
            srcs=(Source(uid, uid - 1 if uid else None,
                         pc if uid else None, False, 0),),
            out=uid + 1,
        ))
    return out


def seed_store(root):
    """One valid result+trace pair (KEY_A) in each tier."""
    results = ResultStore(root)
    traces = TraceStore(root)
    results.put(KEY_A, {"name": "com", "nodes": 4})
    traces.put(KEY_A, _records(5), n_static=8, complete=True)
    return results, traces


def seed_corruption(results, traces):
    """Four distinct kinds of rot across all three tiers."""
    # 1. Garbled result envelope (torn write).
    torn = results.put(KEY_B, {"name": "go"})
    torn.write_text(torn.read_text()[:25])
    # 2. Truncated trace (bad gzip framing).
    rotten = traces.put(KEY_B, _records(20), n_static=8, complete=True)
    rotten.write_bytes(rotten.read_bytes()[:30])
    # 3. Orphaned segment-index sidecar: no trace beside it.
    orphan = traces.path_for_segidx(KEY_C)
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_bytes(b"whatever")
    # 4. Key mismatch: a valid envelope filed under the wrong name.
    wrong = results.path_for(KEY_D)
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_text(results.path_for(KEY_A).read_text())
    return {("result", KEY_B), ("trace", KEY_B),
            ("segidx", KEY_C), ("result", KEY_D)}


class TestCleanStore:
    def test_clean_store_reports_clean(self, tmp_path):
        seed_store(tmp_path)
        report = scrub_store(tmp_path)
        assert report.clean
        assert report.quarantined == 0
        assert report.checked == {"result": 1, "trace": 1, "segidx": 0}

    def test_valid_sidecar_is_not_a_finding(self, tmp_path):
        __, traces = seed_store(tmp_path)
        from repro.core.kernel import TraceColumns
        from repro.core.shard import build_index

        columns = TraceColumns.from_records(_records(5), 8)
        index = build_index(columns, [0, 2, 5])
        assert traces.put_segindex(KEY_A, index) is not None
        report = scrub_store(tmp_path)
        assert report.clean
        assert report.checked["segidx"] == 1


class TestQuarantine:
    def test_every_seeded_corruption_is_quarantined(self, tmp_path):
        results, traces = seed_store(tmp_path)
        expected = seed_corruption(results, traces)
        report = scrub_store(tmp_path)
        assert {(f.tier, f.key) for f in report.findings} == expected
        for finding in report.findings:
            assert finding.quarantined_to is not None
            destination = tmp_path / QUARANTINE_DIR / finding.tier
            assert (destination / finding.path.rsplit("/", 1)[-1]).exists()
            assert not (tmp_path / finding.path).exists()

    def test_valid_entries_survive_and_rerun_is_clean(self, tmp_path):
        results, traces = seed_store(tmp_path)
        seed_corruption(results, traces)
        scrub_store(tmp_path)
        # The good entries never moved and still read back.
        assert results.get(KEY_A) == {"name": "com", "nodes": 4}
        header, records = traces.get(KEY_A, None)
        assert len(records) == 5
        # A second pass over the scrubbed store finds nothing.
        rerun = scrub_store(tmp_path)
        assert rerun.clean

    def test_audit_mode_reports_but_leaves_files(self, tmp_path):
        results, traces = seed_store(tmp_path)
        expected = seed_corruption(results, traces)
        report = scrub_store(tmp_path, quarantine=False)
        assert {(f.tier, f.key) for f in report.findings} == expected
        assert report.quarantined == 0
        for finding in report.findings:
            assert (tmp_path / finding.path).exists() or \
                finding.path.startswith(str(tmp_path))
        # Nothing moved: a real scrub afterwards still finds it all.
        assert not scrub_store(tmp_path).clean


class TestReport:
    def test_report_is_appending_jsonl(self, tmp_path):
        results, traces = seed_store(tmp_path)
        seed_corruption(results, traces)
        report = scrub_store(tmp_path)
        assert report.report_path is not None
        lines = [json.loads(line) for line in
                 open(report.report_path).read().splitlines()]
        summary, findings = lines[0], lines[1:]
        assert summary["scrub"] == 1
        assert summary["findings"] == len(report.findings) == \
            len(findings)
        assert {f["tier"] for f in findings} == \
            {"result", "trace", "segidx"}
        # The rerun appends its (clean) summary to the same file.
        scrub_store(tmp_path)
        lines2 = open(report.report_path).read().splitlines()
        assert len(lines2) == len(lines) + 1
        assert json.loads(lines2[-1])["clean"] is True

    def test_to_dict_round_trips_through_json(self, tmp_path):
        seed_store(tmp_path)
        report = scrub_store(tmp_path)
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["clean"] is True
        assert decoded["checked"]["result"] == 1


class TestScrubCli:
    def test_cli_exit_codes_and_rerun(self, tmp_path, capsys):
        from repro.cli import main

        results, traces = seed_store(tmp_path)
        seed_corruption(results, traces)
        argv = ["cache", "scrub", "--cache-dir", str(tmp_path)]
        assert main(argv) != 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert main(argv) == 0
        assert "clean" in capsys.readouterr().out
