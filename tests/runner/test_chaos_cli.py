"""CLI robustness: the chaos command, SIGTERM checkpointing with
--resume, and the distinct interrupted exit code."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import (
    EXIT_INTERRUPTED,
    EXIT_JOB_FAILURE,
    EXIT_OK,
    main,
)

REPO = Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


class TestChaosCommand:
    def test_chaos_smoke_passes_with_fixed_seed(self, tmp_path, capsys):
        keep = tmp_path / "artifacts"
        code = main([
            "chaos", "--seed", "0", "--workloads", "com",
            "--max-instructions", "2000", "--keep", str(keep),
        ])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "injected >= 3 distinct fault kinds" in out
        assert "byte-identical" in out
        assert "FAIL" not in out
        # --keep preserved the journal for post-mortems/CI artifacts.
        assert (keep / "journal.jsonl").exists()

    def test_chaos_rejects_bad_fault_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--fault", "nonsense"])

    def test_fault_override_parses(self, capsys):
        # rate=0.0 on every site: chaos with nothing armed must fail
        # the >=3-distinct-kinds invariant, proving overrides land.
        code = main([
            "chaos", "--workloads", "com", "--max-instructions", "1000",
            *(flag for site in
              ("store.read", "store.truncate", "store.write",
               "trace.read", "trace.corrupt", "worker.crash",
               "worker.slow", "pool.spawn")
              for flag in ("--fault", f"{site}=0.0")),
        ])
        out = capsys.readouterr().out
        assert code == EXIT_JOB_FAILURE
        assert "FAIL: injected >= 3 distinct fault kinds" in out


@pytest.mark.slow
class TestSigtermResume:
    def test_sigterm_checkpoints_and_resume_completes(self, tmp_path):
        cache = tmp_path / "cache"
        argv = [
            sys.executable, "-m", "repro", "run",
            "--workloads", "com,go,ijp,per", "--max-instructions",
            "60000", "--jobs", "1", "--cache-dir", str(cache),
            "--metrics", "-",
        ]
        process = subprocess.Popen(
            argv, env=_env(), cwd=REPO,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        # Let it get at least one job deep, then interrupt it.
        deadline = time.monotonic() + 60
        journal = cache / "journal.jsonl"
        while time.monotonic() < deadline:
            if journal.exists() and len(
                    journal.read_text().splitlines()) >= 2:
                break
            if process.poll() is not None:
                break
            time.sleep(0.05)
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        __, stderr = process.communicate(timeout=120)

        if process.returncode == 0:
            pytest.skip("run finished before SIGTERM landed")
        assert process.returncode == EXIT_INTERRUPTED, stderr
        assert "--resume" in stderr
        done_before = [
            json.loads(line)["key"] for line in
            journal.read_text().splitlines()[1:]
            if json.loads(line).get("status") == "done"
        ]
        assert done_before  # something was checkpointed

        resumed = subprocess.run(
            [*argv, "--resume", "--profile"], env=_env(), cwd=REPO,
            capture_output=True, text=True, timeout=600,
        )
        assert resumed.returncode == EXIT_OK, resumed.stderr
        # The checkpointed jobs were served from the cache, not re-run.
        assert "cache-hit" in resumed.stdout
        assert f"{len(done_before)} hit" in resumed.stdout

        # Byte-identical to a fresh uninterrupted run: every stored
        # result envelope matches its own content checksum and key set.
        fresh = tmp_path / "fresh"
        again = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--workloads",
             "com,go,ijp,per", "--max-instructions", "60000", "--jobs",
             "1", "--cache-dir", str(fresh), "--metrics", "-"],
            env=_env(), cwd=REPO, capture_output=True, text=True,
            timeout=600,
        )
        assert again.returncode == EXIT_OK, again.stderr

        def envelopes(root):
            return {
                path.name: json.loads(path.read_text())["checksum"]
                for path in (root / "results").rglob("*.json")
            }

        assert envelopes(cache) == envelopes(fresh)


class TestForwarderExitCodes:
    def test_runner_forwarder_maps_keyboard_interrupt(self, monkeypatch):
        from repro import cli
        from repro.runner import __main__ as forwarder

        def boom(parser, args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_run", boom)
        with pytest.warns(DeprecationWarning):
            assert forwarder.main(["--workloads", "com"]) == \
                EXIT_INTERRUPTED

    def test_report_forwarder_maps_keyboard_interrupt(self, monkeypatch):
        import repro.cli as cli
        from repro.report import __main__ as forwarder

        def boom(argv):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "main", boom)
        with pytest.warns(DeprecationWarning):
            assert forwarder.main(["--exhibit", "table1"]) == \
                EXIT_INTERRUPTED

    def test_workloads_forwarder_maps_keyboard_interrupt(
            self, monkeypatch):
        import repro.cli as cli
        from repro.workloads import __main__ as forwarder

        def boom(argv):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "main", boom)
        with pytest.warns(DeprecationWarning):
            assert forwarder.main(["--list"]) == EXIT_INTERRUPTED
