"""ExecutionPolicy: validation, parsing, merging, deprecation shims,
and the identity-exclusion contract (policy never enters job keys).
"""

from __future__ import annotations

import pytest

from repro.runner import (
    DEFAULT_SEGMENT_RECORDS,
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentRunner,
    PolicyError,
    Job,
    job_key,
    resolve_policy,
)
from repro.runner.policy import (
    POLICY_FIELDS,
    assert_excluded_from_identity,
)


class TestValidation:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.engine is None
        assert policy.jobs == 1
        assert policy.segments == 1
        assert policy.segment_records == DEFAULT_SEGMENT_RECORDS

    @pytest.mark.parametrize("kwargs", [
        {"jobs": 0},
        {"retries": -1},
        {"segments": 0},
        {"segment_records": 0},
        {"timeout": 0.0},
        {"timeout": -1.0},
    ])
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(PolicyError):
            ExecutionPolicy(**kwargs)

    def test_engine_normalized_to_string_value(self):
        from repro.core.kernel import AnalysisEngine

        assert ExecutionPolicy(engine="columnar").engine == "columnar"
        assert (ExecutionPolicy(engine=AnalysisEngine.REFERENCE).engine
                == "reference")
        with pytest.raises(ValueError):
            ExecutionPolicy(engine="vectorised")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPolicy().jobs = 4


class TestParseAndMerge:
    def test_parse_full_string(self):
        policy = ExecutionPolicy.parse(
            "engine=columnar,jobs=4,timeout=2.5,retries=2,"
            "segments=8,segment_records=1000")
        assert policy == ExecutionPolicy(
            engine="columnar", jobs=4, timeout=2.5, retries=2,
            segments=8, segment_records=1000)

    def test_parse_over_base_wins(self):
        base = ExecutionPolicy(jobs=2, timeout=9.0)
        policy = ExecutionPolicy.parse("jobs=6,timeout=none", base=base)
        assert policy.jobs == 6
        assert policy.timeout is None

    @pytest.mark.parametrize("text", [
        "jobs", "jobs=x", "timeout=soon", "turbo=1", "segments=-1",
    ])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(PolicyError):
            ExecutionPolicy.parse(text)

    def test_merged_rejects_unknown_field(self):
        with pytest.raises(PolicyError):
            ExecutionPolicy().merged(workers=3)

    def test_describe_is_json_ready(self):
        import json

        desc = ExecutionPolicy(jobs=3).describe()
        assert json.loads(json.dumps(desc)) == desc
        assert set(desc) == set(POLICY_FIELDS)


class TestLegacyShims:
    def test_legacy_kwargs_warn_and_apply(self):
        with pytest.warns(DeprecationWarning, match="jobs"):
            policy = resolve_policy(None, jobs=3, timeout=None,
                                    retries=None, engine=None,
                                    owner="ExperimentRunner")
        assert policy.jobs == 3

    def test_policy_alone_is_silent(self, recwarn):
        policy = resolve_policy(ExecutionPolicy(jobs=2), jobs=None,
                                timeout=None, retries=None, engine=None,
                                owner="ExperimentRunner")
        assert policy.jobs == 2
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_runner_constructor_shim(self):
        with pytest.warns(DeprecationWarning):
            runner = ExperimentRunner(jobs=2, retries=3)
        assert runner.policy.jobs == 2
        assert runner.policy.retries == 3
        assert runner.jobs == 2          # read-only property shim
        assert runner.retries == 3

    def test_runner_accepts_policy(self, recwarn):
        runner = ExperimentRunner(policy=ExecutionPolicy(jobs=4))
        assert runner.policy.jobs == 4
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]


class TestIdentityExclusion:
    def test_contract_asserts_clean(self):
        assert_excluded_from_identity()

    def test_job_keys_ignore_policy(self):
        config = ExperimentConfig(max_instructions=1_000)
        key = job_key(Job("com", config))
        # Any policy — same experiment, same key, shared caches.
        assert key == job_key(Job("com", config))
        runner_a = ExperimentRunner(policy=ExecutionPolicy(
            jobs=8, segments=16, segment_records=100))
        runner_b = ExperimentRunner()
        assert runner_a.policy != runner_b.policy
        assert job_key(Job("com", config)) == key
