"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.cpu import Machine
from repro.minic import compile_program


def run_asm(source: str, input_words=None, input_floats=None,
            max_instructions: int = 2_000_000):
    """Assemble and run ``source``; return the finished Machine."""
    program = assemble(source)
    machine = Machine(
        program,
        input_words=input_words,
        input_floats=input_floats,
        max_instructions=max_instructions,
        tracing=False,
    )
    machine.run()
    return machine


def trace_asm(source: str, input_words=None, input_floats=None,
              max_instructions: int = 2_000_000):
    """Assemble and run ``source`` with tracing; return (machine, trace)."""
    program = assemble(source)
    machine = Machine(
        program,
        input_words=input_words,
        input_floats=input_floats,
        max_instructions=max_instructions,
    )
    records = list(machine.trace())
    return machine, records


def run_minic(source: str, input_words=None, input_floats=None,
              max_instructions: int = 5_000_000):
    """Compile and run mini-C ``source``; return the program's output."""
    program = compile_program(source)
    machine = Machine(
        program,
        input_words=input_words,
        input_floats=input_floats,
        max_instructions=max_instructions,
        tracing=False,
    )
    machine.run()
    return machine.output


@pytest.fixture
def gcc_loop_source() -> str:
    """The paper's Fig. 1 loop (126.gcc, invalidate_for_call), adapted
    to this repo's assembler syntax."""
    return """
        .data
regs_ever_live:   .word 0x8000bfff, 0xfffffff0
        .text
__start:
        add  $6, $0, $0
LL1:    srl  $2, $6, 5
        sll  $2, $2, 2
        la   $19, regs_ever_live
        addu $2, $2, $19
        lw   $2, 0($2)
        andi $3, $6, 31
        srlv $2, $2, $3
        andi $2, $2, 1
        beq  $2, $0, LL2
        nop
LL2:    addiu $6, $6, 1
        slti $2, $6, 64
        bne  $2, $0, LL1
        halt
"""
