"""Tests for the predictor extensions: hybrid, confidence, delayed
update, and the two-level local branch predictor."""

import pytest

from repro.predictors import (
    ConfidentPredictor,
    DelayedPredictor,
    GsharePredictor,
    HybridPredictor,
    LocalBranchPredictor,
    make_branch_predictor,
    make_predictor,
)


def accuracy(predictor, values, key=5):
    hits = sum(predictor.see(key, value) for value in values)
    return hits / len(values)


class TestHybrid:
    def test_factory(self):
        assert isinstance(make_predictor("hybrid"), HybridPredictor)

    def test_matches_stride_on_strides(self):
        values = list(range(200))
        hybrid = accuracy(HybridPredictor(), values)
        stride = accuracy(make_predictor("stride"), values)
        assert hybrid >= stride - 0.05

    def test_matches_context_on_patterns(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6] * 40
        hybrid = accuracy(HybridPredictor(), values)
        context = accuracy(make_predictor("context"), values)
        assert hybrid >= context - 0.05

    def test_beats_both_on_mixed_keys(self):
        """Stride sequence on one key, pattern on another: the chooser
        picks the right component per entry."""
        hybrid = HybridPredictor()
        stride_only = make_predictor("stride")
        context_only = make_predictor("context")
        stride_values = list(range(300))
        pattern_values = ([7, 2, 9] * 100)[:300]
        hybrid_hits = 0
        stride_hits = 0
        context_hits = 0
        for s_value, p_value in zip(stride_values, pattern_values):
            hybrid_hits += hybrid.see(1, s_value)
            hybrid_hits += hybrid.see(2 << 16, p_value)
            stride_hits += stride_only.see(1, s_value)
            stride_hits += stride_only.see(2 << 16, p_value)
            context_hits += context_only.see(1, s_value)
            context_hits += context_only.see(2 << 16, p_value)
        assert hybrid_hits > stride_hits
        assert hybrid_hits > context_hits

    def test_peek_consistent_with_chooser(self):
        predictor = HybridPredictor()
        for value in (5, 5, 5, 5):
            predictor.see(0, value)
        assert predictor.peek(0) == 5


class TestConfidence:
    def test_gating_builds_up(self):
        predictor = ConfidentPredictor(make_predictor("last"), threshold=3)
        # First few correct predictions are not yet confident.
        results = [predictor.see(1, 42) for __ in range(10)]
        assert results[1] is False      # correct but not confident
        assert results[-1] is True      # confident and correct

    def test_reset_on_miss(self):
        predictor = ConfidentPredictor(make_predictor("last"), threshold=2)
        for __ in range(6):
            predictor.see(1, 7)
        assert predictor.estimator.confident(1)
        predictor.see(1, 8)             # misprediction resets
        assert not predictor.estimator.confident(1)

    def test_decrement_policy(self):
        predictor = ConfidentPredictor(
            make_predictor("last"), threshold=2, penalty="decrement"
        )
        for __ in range(8):
            predictor.see(1, 7)
        predictor.see(1, 8)
        assert predictor.estimator.confident(1)  # one miss only dents it

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ConfidentPredictor(make_predictor("last"), penalty="explode")

    def test_accuracy_exceeds_raw_on_noisy_stream(self):
        """Confidence trades coverage for accuracy: the used subset
        must be more accurate than the raw predictor stream."""
        from repro.workloads.inputs import Rng

        rng = Rng(9)
        values = []
        for i in range(4000):
            # Mostly a stride, with bursts of noise.
            if (i // 100) % 4 == 3:
                values.append(rng.below(10_000))
            else:
                values.append(i)
        raw = make_predictor("stride")
        raw_hits = sum(raw.see(3, v) for v in values)
        gated = ConfidentPredictor(make_predictor("stride"), threshold=4)
        for value in values:
            gated.see(3, value)
        assert gated.accuracy() > raw_hits / len(values)
        assert 0.0 < gated.coverage() < 1.0

    def test_peek_respects_confidence(self):
        predictor = ConfidentPredictor(make_predictor("last"), threshold=4)
        predictor.see(1, 9)
        assert predictor.peek(1) is None  # not confident yet


class TestDelayed:
    def test_zero_delay_equals_immediate(self):
        values = [(i * 3) & 0xFF for i in range(100)]
        immediate = make_predictor("stride")
        delayed = DelayedPredictor(make_predictor("stride"), delay=0)
        for value in values:
            assert immediate.see(5, value) == delayed.see(5, value)

    def test_delayed_stride_systematically_misses_strides(self):
        """The 'implementation idiosyncrasy' the paper's immediate
        update avoids: with naive delayed update, a stride predictor's
        view lags the stream and every stride prediction is off by the
        delay; accuracy collapses from ~95% to ~0."""
        values = list(range(60))
        immediate_predictor = make_predictor("stride")
        immediate = sum(immediate_predictor.see(1, v) for v in values)
        predictor = DelayedPredictor("stride", delay=16)
        late = sum(predictor.see(1, v) for v in values)
        assert immediate > 50
        assert late == 0

    def test_constants_survive_delay(self):
        """Constant sequences are delay-insensitive: the lagged state
        still predicts the same value."""
        predictor = DelayedPredictor("last", delay=8)
        hits = [predictor.see(1, 7) for __ in range(50)]
        assert all(hits[10:])

    def test_flush_applies_pending(self):
        predictor = DelayedPredictor("last", delay=50)
        for __ in range(5):
            predictor.see(1, 7)
        assert predictor.peek(1) is None  # nothing applied yet
        predictor.flush()
        assert predictor.peek(1) == 7

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayedPredictor("last", delay=-1)


class TestLocalBranchPredictor:
    def test_factory(self):
        assert isinstance(make_branch_predictor("gshare"), GsharePredictor)
        assert isinstance(make_branch_predictor("local"),
                          LocalBranchPredictor)
        with pytest.raises(ValueError):
            make_branch_predictor("oracle")

    def test_learns_per_branch_patterns(self):
        predictor = LocalBranchPredictor()
        pattern = [True, True, False]
        hits = []
        for __ in range(200):
            for taken in pattern:
                hits.append(predictor.see(40, taken))
        assert all(hits[-30:])

    def test_interleaved_branches_do_not_destroy_history(self):
        """Local histories keep two interleaved branches separate,
        where a single global history would mix them."""
        predictor = LocalBranchPredictor()
        correct = 0
        total = 0
        for i in range(600):
            correct += predictor.see(10, i % 2 == 0)
            correct += predictor.see(20, i % 3 == 0)
            total += 2
        assert correct / total > 0.9

    def test_analysis_accepts_local_kind(self):
        from repro.asm import assemble
        from repro.core import AnalysisConfig, analyze_machine
        from repro.cpu import Machine

        source = (
            "__start: li $s0, 0\n"
            "loop: addiu $s0, $s0, 1\nslti $t0, $s0, 30\n"
            "bne $t0, $zero, loop\nhalt\n"
        )
        config = AnalysisConfig(branch_predictor="local")
        result = analyze_machine(Machine(assemble(source)), "x", config)
        assert result.predictors["context"].branches.total() == 30
