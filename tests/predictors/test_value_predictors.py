"""Behavioural tests for the three value predictors."""

from repro.predictors import (
    ContextPredictor,
    LastValuePredictor,
    PredictorBank,
    StridePredictor,
    make_predictor,
)


def feed(predictor, key, values):
    """Feed ``values`` for ``key``; return the list of hit flags."""
    return [predictor.see(key, value) for value in values]


class TestLastValue:
    def test_constant_sequence_predicted_after_first(self):
        hits = feed(LastValuePredictor(), 10, [7, 7, 7, 7])
        assert hits == [False, True, True, True]

    def test_stride_sequence_not_predicted(self):
        hits = feed(LastValuePredictor(), 10, [1, 2, 3, 4, 5])
        assert not any(hits)

    def test_hysteresis_keeps_value_one_blip(self):
        predictor = LastValuePredictor()
        feed(predictor, 3, [5, 5, 5])          # confident in 5
        assert predictor.see(3, 9) is False    # blip
        assert predictor.see(3, 5) is True     # 5 survived the blip

    def test_replacement_after_counter_drains(self):
        predictor = LastValuePredictor()
        feed(predictor, 3, [5, 5])
        feed(predictor, 3, [9, 9, 9, 9, 9])
        assert predictor.see(3, 9) is True

    def test_aliasing_shares_entries(self):
        predictor = LastValuePredictor(index_bits=4)
        feed(predictor, 0, [1, 1, 1])
        # Key 16 aliases key 0 in a 16-entry table.
        assert predictor.peek(16) == 1

    def test_peek_empty(self):
        assert LastValuePredictor().peek(0) is None

    def test_distinguishes_keys(self):
        predictor = LastValuePredictor()
        feed(predictor, 1, [10, 10])
        feed(predictor, 2, [20, 20])
        assert predictor.peek(1) == 10
        assert predictor.peek(2) == 20


class TestStride:
    def test_learns_stride_after_two_deltas(self):
        hits = feed(StridePredictor(), 5, [0, 1, 2, 3, 4])
        # After seeing 0,1 the stride 1 appears once; after 1,2 it is
        # confirmed, so 3 and 4 are predicted (2 was already last+stride).
        assert hits[3:] == [True, True]

    def test_includes_last_value_behaviour(self):
        hits = feed(StridePredictor(), 5, [7, 7, 7])
        assert hits == [False, True, True]

    def test_two_delta_hysteresis(self):
        predictor = StridePredictor()
        feed(predictor, 1, [0, 10, 20, 30])    # learned stride 10
        assert predictor.see(1, 99) is False   # irregularity
        # Prediction stride stays 10: predicts 99 + 10.
        assert predictor.peek(1) == 109

    def test_stride_replaced_when_repeated(self):
        predictor = StridePredictor()
        feed(predictor, 1, [0, 10, 20])        # stride 10 confirmed
        feed(predictor, 1, [23, 26])           # stride 3 appears twice
        assert predictor.peek(1) == 29

    def test_float_strides(self):
        hits = feed(StridePredictor(), 2, [0.5, 1.0, 1.5, 2.0])
        assert hits[3] is True

    def test_paper_example_register_6(self):
        # Fig. 1: register $6 takes values 0,1,...,64; a stride
        # predictor locks on after the first two values.
        hits = feed(StridePredictor(), 9, list(range(65)))
        assert hits[0] is False
        assert all(hits[3:])


class TestContext:
    def test_repeating_pattern_learned(self):
        predictor = ContextPredictor()
        pattern = [1, 2, 3, 4] * 20
        hits = feed(predictor, 1, pattern)
        # After warm-up, every value in the period-4 pattern is predicted.
        assert all(hits[-8:])

    def test_non_stride_pattern_beats_stride(self):
        values = [5, 9, 2, 5, 9, 2] * 10
        context_hits = feed(ContextPredictor(), 1, values)
        stride_hits = feed(StridePredictor(), 1, values)
        assert sum(context_hits) > sum(stride_hits)

    def test_shared_second_level_constructive(self):
        # Two PCs producing the same sequence share second-level entries,
        # so the second PC benefits from the first PC's learning.
        predictor = ContextPredictor()
        pattern = [3, 1, 4, 1, 5] * 8
        feed(predictor, 100, pattern)
        hits = feed(predictor, 200, pattern)
        assert sum(hits) >= sum(feed(ContextPredictor(), 200, pattern))

    def test_counter_guards_replacement(self):
        predictor = ContextPredictor()
        pattern = [1, 2, 3, 4] * 10
        feed(predictor, 1, pattern)
        correct_before = sum(feed(predictor, 1, [1, 2, 3, 4]))
        assert correct_before == 4

    def test_limited_history_misses_long_period(self):
        # Paper 4.4: an order-4 context cannot disambiguate a sequence
        # whose repeating unit is longer than recent context reveals.
        predictor = ContextPredictor()
        masked = [0, 0, 0, 0, 0, 0, 0, 0, 1, 1] * 30
        hits = feed(predictor, 1, masked)
        assert not all(hits[40:])   # some mispredictions persist


class TestFactoryAndBank:
    def test_make_predictor(self):
        assert isinstance(make_predictor("last"), LastValuePredictor)
        assert isinstance(make_predictor("stride"), StridePredictor)
        assert isinstance(make_predictor("context"), ContextPredictor)

    def test_make_predictor_unknown(self):
        import pytest

        with pytest.raises(ValueError):
            make_predictor("oracle")

    def test_bank_separates_inputs_and_outputs(self):
        bank = PredictorBank("last")
        bank.see_output(10, 5)
        # The input predictor saw nothing yet: no short circuit.
        assert bank.see_input(10, 0, 5) is False

    def test_bank_slot_separation(self):
        bank = PredictorBank("last")
        for __ in range(3):
            bank.see_input(10, 0, 111)
            bank.see_input(10, 1, 222)
        assert bank.see_input(10, 0, 111) is True
        assert bank.see_input(10, 1, 222) is True

    def test_letters(self):
        assert PredictorBank("last").letter == "L"
        assert PredictorBank("stride").letter == "S"
        assert PredictorBank("context").letter == "C"
