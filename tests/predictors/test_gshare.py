"""Tests for the gshare branch predictor."""

from repro.predictors import GsharePredictor


class TestGshare:
    def test_always_taken_branch_learned(self):
        # The global history register shifts in a 1 per branch, so the
        # index only stabilises once the 16-bit history saturates.
        predictor = GsharePredictor()
        hits = [predictor.see(10, True) for __ in range(50)]
        assert all(hits[20:])

    def test_alternating_pattern_learned_via_history(self):
        predictor = GsharePredictor()
        outcomes = [bool(i % 2) for i in range(300)]
        hits = [predictor.see(10, taken) for taken in outcomes]
        # Global history disambiguates the alternation perfectly
        # once warmed up.
        assert all(hits[-50:])

    def test_initial_prediction_weakly_not_taken(self):
        predictor = GsharePredictor()
        assert predictor.peek(1234) is False

    def test_counter_saturation(self):
        predictor = GsharePredictor(index_bits=4)
        for __ in range(10):
            predictor.see(0, True)
        # One not-taken flips nothing permanently.
        predictor.see(0, False)
        assert isinstance(predictor.peek(0), bool)

    def test_history_length_matches_index_bits(self):
        predictor = GsharePredictor(index_bits=6)
        for i in range(100):
            predictor.see(i, True)
        assert predictor._history < (1 << 6)

    def test_loop_branch_high_accuracy(self):
        # A 64-iteration loop branch: taken 63 times, then not taken.
        predictor = GsharePredictor()
        correct = 0
        total = 0
        for __ in range(30):
            for iteration in range(64):
                taken = iteration != 63
                correct += predictor.see(77, taken)
                total += 1
        assert correct / total > 0.9
