"""Recorder primitives: spans, counters, the current-recorder plumbing."""

from __future__ import annotations

import time

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    ObsConfig,
    Recorder,
    Span,
    get_recorder,
    recording,
    set_recorder,
    spanned,
)


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with the no-op recorder installed."""
    previous = set_recorder(None)
    yield
    set_recorder(previous)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        assert [s.name for s in rec.roots] == ["outer"]
        assert [s.name for s in rec.roots[0].children] == ["inner", "inner"]
        assert rec.roots[0].children[0].children == []

    def test_wall_time_is_monotone_and_covers_children(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                time.sleep(0.02)
        outer = rec.roots[0]
        inner = outer.children[0]
        assert inner.wall >= 0.02
        assert outer.wall >= inner.wall
        assert outer.cpu >= 0.0 and inner.cpu >= 0.0

    def test_span_survives_exceptions(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.span("outer"):
                raise ValueError("boom")
        assert rec.roots[0].name == "outer"
        assert rec.roots[0].wall >= 0.0
        assert rec._stack == []

    def test_sequential_spans_are_siblings(self):
        rec = Recorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        assert [s.name for s in rec.roots] == ["a", "b"]

    def test_span_roundtrips_through_dict(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        payload = rec.roots[0].to_dict()
        clone = Span.from_dict(payload)
        assert clone.to_dict() == payload


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("x", 2)
        rec.count("x", 3)
        rec.count("y")
        assert rec.counters == {"x": 5, "y": 1}

    def test_gauges_overwrite(self):
        rec = Recorder()
        rec.gauge("g", 1.0)
        rec.gauge("g", 7.5)
        assert rec.gauges == {"g": 7.5}

    def test_snapshot_is_json_safe_and_sorted(self):
        rec = Recorder()
        rec.count("b")
        rec.count("a")
        with rec.span("s"):
            pass
        snap = rec.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["spans"][0]["name"] == "s"
        import json
        json.dumps(snap)  # must not raise


class TestMerge:
    def test_merge_adds_counters_and_attaches_spans(self):
        worker = Recorder()
        worker.count("sim.instructions", 100)
        with worker.span("analyze"):
            pass
        parent = Recorder()
        parent.count("sim.instructions", 10)
        with parent.span("runner.run"):
            parent.merge(worker.snapshot())
        assert parent.counters["sim.instructions"] == 110
        run_span = parent.roots[0]
        assert [s.name for s in run_span.children] == ["analyze"]

    def test_merge_outside_a_span_creates_roots(self):
        worker = Recorder()
        with worker.span("analyze"):
            pass
        parent = Recorder()
        parent.merge(worker.snapshot())
        assert [s.name for s in parent.roots] == ["analyze"]


class TestCurrentRecorder:
    def test_default_is_the_null_recorder(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_null_recorder_is_inert(self):
        rec = NullRecorder()
        with rec.span("anything"):
            rec.count("x", 5)
            rec.gauge("g", 1)
        assert rec.snapshot() == {"counters": {}, "gauges": {}, "spans": []}

    def test_recording_installs_and_restores(self):
        rec = Recorder()
        with recording(rec) as installed:
            assert installed is rec
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with recording(Recorder()):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_spanned_resolves_recorder_per_call(self):
        @spanned("work")
        def work():
            return 42

        assert work() == 42  # null recorder: no crash, nothing recorded
        rec = Recorder()
        with recording(rec):
            assert work() == 42
        assert [s.name for s in rec.roots] == ["work"]


class TestObsConfig:
    def test_defaults(self):
        cfg = ObsConfig()
        assert cfg.enabled and cfg.events_path is None

    def test_frozen(self):
        with pytest.raises(Exception):
            ObsConfig().enabled = False
