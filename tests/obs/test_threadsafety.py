"""Regression tests for the process-wide globals under threads.

The service hosts the obs recorder and the shared default runner in a
multithreaded process (event loop + executor threads), so the
primitives they sit on must tolerate being hammered concurrently:
lost counter increments, torn recorder swaps or two threads
constructing two "default" runners are all bugs the server would hit
in production.
"""

import threading

import pytest

import repro.api
from repro.obs import NULL_RECORDER, Recorder, get_recorder, set_recorder
from repro.runner import (
    default_runner,
    reset_default_runner,
    set_default_runner,
)

THREADS = 8
ITERATIONS = 2_000


@pytest.fixture
def no_cache_runner(monkeypatch):
    """A clean default-runner slot that never touches the repo's cache."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    reset_default_runner()
    yield
    reset_default_runner()


class TestRecorderConcurrency:
    def test_counters_lose_no_increments(self):
        recorder = Recorder()
        barrier = threading.Barrier(THREADS)

        def hammer():
            barrier.wait()
            for __ in range(ITERATIONS):
                recorder.count("shared", 1)
                recorder.gauge("depth", 1.0)

        threads = [threading.Thread(target=hammer)
                   for __ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.counters["shared"] == THREADS * ITERATIONS

    def test_spans_nest_per_thread(self):
        recorder = Recorder()
        barrier = threading.Barrier(THREADS)

        def nest(index):
            barrier.wait()
            with recorder.span(f"outer-{index}"):
                with recorder.span("inner"):
                    pass

        threads = [threading.Thread(target=nest, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        profile = recorder.snapshot()
        roots = {span["name"]: span for span in profile["spans"]}
        assert len(roots) == THREADS
        for index in range(THREADS):
            children = roots[f"outer-{index}"]["children"]
            assert [child["name"] for child in children] == ["inner"]

    def test_snapshot_during_writes_is_well_formed(self):
        recorder = Recorder()
        stop = threading.Event()

        def write():
            while not stop.is_set():
                recorder.count("noise", 1)

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for __ in range(200):
                profile = recorder.snapshot()
                assert set(profile) == {"counters", "gauges", "spans"}
        finally:
            stop.set()
            writer.join()

    def test_swap_restore_pairs_balance(self):
        assert get_recorder() is NULL_RECORDER
        barrier = threading.Barrier(THREADS)

        def churn():
            barrier.wait()
            for __ in range(200):
                mine = Recorder()
                previous = set_recorder(mine)
                set_recorder(previous)

        threads = [threading.Thread(target=churn)
                   for __ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert get_recorder() is NULL_RECORDER


class TestDefaultRunnerConcurrency:
    def test_racing_first_callers_share_one_instance(self, no_cache_runner):
        barrier = threading.Barrier(THREADS)
        seen = []
        lock = threading.Lock()

        def grab():
            barrier.wait()
            runner = default_runner()
            with lock:
                seen.append(id(runner))

        threads = [threading.Thread(target=grab)
                   for __ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == 1

    def test_concurrent_configure_installs_exactly_one_winner(
            self, no_cache_runner):
        barrier = threading.Barrier(THREADS)
        installed = []
        lock = threading.Lock()

        def configure(jobs):
            barrier.wait()
            runner = repro.api.configure(jobs=jobs)
            with lock:
                installed.append(runner)

        threads = [threading.Thread(target=configure, args=(i + 1,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every call produced a runner; the shared slot holds the last
        # one installed (no torn/lost update).
        assert default_runner() in installed

    def test_configure_does_not_drop_concurrent_settings(
            self, no_cache_runner):
        # Each thread flips a different knob; serialised read-modify-
        # install means the final runner reflects *both* when the
        # second builder starts from the first's output.
        set_default_runner(None)
        repro.api.configure(jobs=7)
        done = threading.Barrier(2)

        def set_retries():
            done.wait()
            repro.api.configure(retries=9)

        def set_timeout():
            done.wait()
            repro.api.configure(timeout=123.0)

        threads = [threading.Thread(target=set_retries),
                   threading.Thread(target=set_timeout)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        runner = default_runner()
        assert runner.jobs == 7
        assert runner.retries == 9
        assert runner.timeout == 123.0
