"""End-to-end profiles: counters reconcile with RunMetrics, and the
disabled recorder stays within the required overhead budget."""

from __future__ import annotations

import time

import pytest

from repro.obs import NULL_RECORDER, Recorder, recording, set_recorder
from repro.runner import (
    ExperimentConfig,
    ExperimentRunner,
    ResultStore,
    TraceStore,
)
from repro.runner.metrics import (
    STATUS_CACHE_HIT,
    STATUS_COMPUTED,
    STATUS_MEMO_HIT,
    STATUS_REPLAYED,
)

BUDGET = 1_500
WORKLOADS = ("com", "app")


@pytest.fixture(autouse=True)
def _clean_recorder():
    previous = set_recorder(None)
    yield
    set_recorder(previous)


def _runner(tmp_path, **kwargs) -> ExperimentRunner:
    return ExperimentRunner(
        store=ResultStore(tmp_path / "cache"),
        trace_store=TraceStore(tmp_path / "cache"),
        **kwargs,
    )


def _config() -> ExperimentConfig:
    return ExperimentConfig(workloads=WORKLOADS, max_instructions=BUDGET)


class TestProfileReconciliation:
    def test_cold_run_counters_match_metrics(self, tmp_path):
        run = _runner(tmp_path, observe=True).run(_config())
        assert not run.failures
        profile = run.metrics.profile
        counters = profile["counters"]

        # Resolution counters mirror the per-job metrics exactly.
        assert counters[f"runner.resolve.{STATUS_COMPUTED}"] == \
            run.metrics.count(STATUS_COMPUTED) == len(WORKLOADS)

        # Simulation and analysis agree with the metrics' instruction
        # accounting: every computed job simulated and analysed its
        # full budget.
        assert counters["sim.instructions"] == \
            run.metrics.total_instructions
        assert counters["analyze.nodes"] == run.metrics.total_instructions
        assert counters["sim.traces"] == len(WORKLOADS)
        assert counters["analyze.passes"] == len(WORKLOADS)

        # Per-predictor classifications partition the analysed nodes.
        for kind in ("last", "stride", "context"):
            classified = sum(
                value for name, value in counters.items()
                if name.startswith(f"analyze.pred.{kind}.")
            )
            assert classified == counters["analyze.nodes"]

        # Cold caches: every lookup missed, every job wrote through.
        assert counters["store.result.misses"] == len(WORKLOADS)
        assert counters["store.result.puts"] == len(WORKLOADS)
        assert counters["store.trace.misses"] == len(WORKLOADS)
        assert counters["store.trace.puts"] == len(WORKLOADS)
        assert "store.result.hits" not in counters

        # Spans cover the pipeline: run > simulate/analyze/stores.
        root = profile["spans"][0]
        assert root["name"] == "runner.run"
        child_names = {span["name"] for span in root["children"]}
        assert {"simulate", "analyze",
                "store.trace.put", "store.result.put"} <= child_names

    def test_replayed_run_decodes_instead_of_simulating(self, tmp_path):
        runner = _runner(tmp_path)
        assert not runner.run(_config()).failures  # warm the trace tier
        # New runner (cold memo), smaller budget, results keyed anew.
        replay = _runner(
            tmp_path, observe=True
        ).run(ExperimentConfig(workloads=WORKLOADS,
                               max_instructions=BUDGET - 500))
        counters = replay.metrics.profile["counters"]
        assert counters[f"runner.resolve.{STATUS_REPLAYED}"] == \
            replay.metrics.replays == len(WORKLOADS)
        assert "sim.instructions" not in counters  # no simulation at all
        # The stored BUDGET-instruction traces were decoded in full,
        # then re-truncated to each config's own budget by the analyzer.
        assert counters["trace.decode.records"] == BUDGET * len(WORKLOADS)
        assert counters["analyze.nodes"] == \
            (BUDGET - 500) * len(WORKLOADS)
        root = replay.metrics.profile["spans"][0]
        child_names = {span["name"] for span in root["children"]}
        assert "trace.decode" in {s["name"] for c in root["children"]
                                  for s in c["children"]} | child_names
        assert "simulate" not in child_names

    def test_hits_are_counted_without_work(self, tmp_path):
        runner = _runner(tmp_path, observe=True)
        assert not runner.run(_config()).failures
        warm = runner.run(_config())
        counters = warm.metrics.profile["counters"]
        assert counters[f"runner.resolve.{STATUS_MEMO_HIT}"] == \
            warm.metrics.count(STATUS_MEMO_HIT) == len(WORKLOADS)
        assert "analyze.passes" not in counters
        cold_memo = _runner(tmp_path, observe=True)
        disk = cold_memo.run(_config())
        counters = disk.metrics.profile["counters"]
        assert counters[f"runner.resolve.{STATUS_CACHE_HIT}"] == \
            disk.metrics.count(STATUS_CACHE_HIT) == len(WORKLOADS)
        assert counters["store.result.hits"] == len(WORKLOADS)

    def test_sweep_profile_reconciles(self, tmp_path):
        configs = [
            ExperimentConfig(workloads=("com",), max_instructions=n)
            for n in (500, 1000)
        ]
        runs = _runner(tmp_path, observe=True).run_many(configs)
        profile = runs[0].metrics.profile
        assert profile is runs[1].metrics.profile  # one shared profile
        counters = profile["counters"]
        resolved = sum(value for name, value in counters.items()
                       if name.startswith("runner.resolve."))
        assert resolved == sum(len(r.metrics.jobs) for r in runs)
        # One capture (largest budget) fanned out to both analyzers.
        assert counters["sim.traces"] == 1
        assert counters["sim.instructions"] == 1000
        assert counters["analyze.nodes"] == 1500

    def test_unobserved_runs_carry_no_profile(self, tmp_path):
        run = _runner(tmp_path).run(_config())
        assert run.metrics.profile is None
        assert "profile" not in run.metrics.to_dict()

    def test_events_path_written(self, tmp_path):
        from repro.obs import ObsConfig, from_jsonl

        events = tmp_path / "events.jsonl"
        runner = _runner(tmp_path,
                         observe=ObsConfig(events_path=str(events)))
        runner.run(_config())
        rebuilt = from_jsonl(events.read_text())
        assert rebuilt["counters"]["sim.instructions"] == \
            BUDGET * len(WORKLOADS)


class TestDisabledOverhead:
    def test_null_recorder_overhead_is_within_noise(self, tmp_path):
        """Instrumentation off must cost <5% of a budget-capped run.

        Rather than compare two noisy wall-clock runs, bound the cost
        analytically: (number of recorder calls the run makes) x
        (measured per-call cost of the null recorder) must be under 5%
        of the run's wall time.  The product is a strict upper bound
        on what the disabled instrumentation can add.
        """
        config = _config()

        start = time.perf_counter()
        run = ExperimentRunner().run(config)  # null recorder throughout
        wall = time.perf_counter() - start
        assert not run.failures

        rec = Recorder()
        with recording(rec):
            ExperimentRunner().run(config)
        calls = rec.calls

        null = NULL_RECORDER
        trials = max(10_000, calls)
        start = time.perf_counter()
        for __ in range(trials):
            with null.span("x"):
                null.count("x", 1)
        per_pair = (time.perf_counter() - start) / trials

        # Each recorded call is at most one span-enter/exit plus one
        # count; per_pair covers both, so calls * per_pair over-counts.
        overhead = calls * per_pair
        assert overhead < 0.05 * wall, (
            f"{calls} calls x {per_pair * 1e9:.0f}ns = "
            f"{overhead * 1e3:.2f}ms >= 5% of {wall * 1e3:.0f}ms"
        )
