"""Exporters: JSONL round-trip, Prometheus text, human rendering."""

from __future__ import annotations

import json

from repro.obs import (
    Recorder,
    aggregate_spans,
    from_jsonl,
    render_profile,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)


def _sample_profile() -> dict:
    rec = Recorder()
    rec.count("sim.instructions", 1234)
    rec.count("runner.resolve.cache-hit", 2)
    rec.gauge("store.bytes", 9876)
    with rec.span("runner.run"):
        with rec.span("simulate"):
            pass
        with rec.span("analyze"):
            pass
        with rec.span("analyze"):
            pass
    return rec.snapshot()


class TestJsonl:
    def test_round_trip_is_exact(self):
        profile = _sample_profile()
        assert from_jsonl(to_jsonl(profile)) == profile

    def test_one_valid_json_object_per_line(self):
        for line in to_jsonl(_sample_profile()).strip().splitlines():
            event = json.loads(line)
            assert event["type"] in {"meta", "counter", "gauge", "span"}

    def test_depth_encodes_nesting(self):
        events = [json.loads(line) for line in
                  to_jsonl(_sample_profile()).strip().splitlines()]
        spans = [e for e in events if e["type"] == "span"]
        assert [(s["name"], s["depth"]) for s in spans] == [
            ("runner.run", 0), ("simulate", 1), ("analyze", 1),
            ("analyze", 1),
        ]

    def test_write_jsonl_appends(self, tmp_path):
        profile = _sample_profile()
        path = tmp_path / "events.jsonl"
        write_jsonl(profile, path)
        write_jsonl(profile, path)
        lines = path.read_text().strip().splitlines()
        metas = [ln for ln in lines if json.loads(ln)["type"] == "meta"]
        assert len(metas) == 2  # two appended event streams

    def test_from_jsonl_skips_blank_lines(self):
        profile = _sample_profile()
        padded = "\n".join(["", *to_jsonl(profile).splitlines(), "", ""])
        assert from_jsonl(padded) == profile


class TestPrometheus:
    def test_counters_gauges_and_span_aggregates(self):
        text = to_prometheus(_sample_profile())
        assert "repro_sim_instructions_total 1234" in text
        # hyphens sanitised to underscores
        assert "repro_runner_resolve_cache_hit_total 2" in text
        assert "repro_store_bytes 9876" in text
        assert 'repro_span_calls{span="analyze"} 2' in text
        assert 'repro_span_wall_seconds{span="runner.run"}' in text

    def test_every_sample_has_a_type_line(self):
        lines = to_prometheus(_sample_profile()).strip().splitlines()
        metrics = {ln.split("{")[0].split(" ")[0]
                   for ln in lines if not ln.startswith("#")}
        typed = {ln.split(" ")[2] for ln in lines if ln.startswith("# TYPE")}
        assert metrics <= typed


class TestAggregateAndRender:
    def test_aggregate_spans_flattens_by_name(self):
        totals = aggregate_spans(_sample_profile()["spans"])
        assert totals["analyze"]["calls"] == 2
        assert set(totals) == {"runner.run", "simulate", "analyze"}

    def test_render_merges_siblings_and_lists_counters(self):
        text = render_profile(_sample_profile())
        assert text.count("analyze") == 1  # merged siblings
        assert "sim.instructions" in text
        assert "1,234" in text

    def test_render_empty_profile(self):
        empty = {"counters": {}, "gauges": {}, "spans": []}
        assert render_profile(empty) == "(empty profile)"


class TestLabels:
    """Labelled counters: canonical encoding, Prometheus exposition,
    and lossless round-trips (the qos.* attribution path)."""

    def test_encode_is_canonical(self):
        from repro.obs import encode_labels

        # Sorted keys: insertion order never leaks into the name.
        a = encode_labels("qos.served", {"tenant": "alice", "status": "warm"})
        b = encode_labels("qos.served", {"status": "warm", "tenant": "alice"})
        assert a == b == 'qos.served{status="warm",tenant="alice"}'

    def test_decode_inverts_encode(self):
        from repro.obs import decode_labels, encode_labels

        labels = {"tenant": "a.b-c_d", "phase": "queue"}
        base, decoded = decode_labels(encode_labels("qos.x", labels))
        assert base == "qos.x"
        assert decoded == labels

    def test_escaping_round_trips(self):
        from repro.obs import decode_labels, encode_labels

        labels = {"k": 'quo"te\\slash\nline'}
        __, decoded = decode_labels(encode_labels("n", labels))
        assert decoded == labels

    def test_unlabelled_name_decodes_to_empty_labels(self):
        from repro.obs import decode_labels

        assert decode_labels("service.requests") == \
            ("service.requests", {})

    def test_recorder_folds_labels_into_counter_names(self):
        rec = Recorder()
        rec.count("qos.requests", 1, labels={"tenant": "alice"})
        rec.count("qos.requests", 2, labels={"tenant": "alice"})
        rec.count("qos.requests", 1, labels={"tenant": "bob"})
        counters = rec.snapshot()["counters"]
        assert counters['qos.requests{tenant="alice"}'] == 3
        assert counters['qos.requests{tenant="bob"}'] == 1

    def test_labelled_counters_survive_jsonl(self):
        rec = Recorder()
        rec.count("qos.shed", 4, labels={"tenant": "t", "reason": "rate"})
        profile = rec.snapshot()
        assert from_jsonl(to_jsonl(profile))["counters"] == \
            profile["counters"]

    def test_prometheus_groups_label_sets_into_one_family(self):
        rec = Recorder()
        rec.count("qos.requests", 1, labels={"tenant": "alice"})
        rec.count("qos.requests", 2, labels={"tenant": "bob"})
        rec.count("qos.requests", 5)           # unlabelled sibling
        text = to_prometheus(rec.snapshot())
        assert text.count("# TYPE repro_qos_requests_total") == 1
        assert 'repro_qos_requests_total{tenant="alice"} 1' in text
        assert 'repro_qos_requests_total{tenant="bob"} 2' in text
        assert "\nrepro_qos_requests_total 5" in text

    def test_parse_prometheus_round_trips_samples(self):
        from repro.obs import parse_prometheus

        rec = Recorder()
        rec.count("qos.phase_seconds", 1.5,
                  labels={"tenant": "alice", "phase": "simulate"})
        rec.gauge("service.queue_depth", 3, labels={"klass": "batch"})
        samples = {
            (family, tuple(sorted(labels.items()))): value
            for family, labels, value
            in parse_prometheus(to_prometheus(rec.snapshot()))
        }
        key = ("repro_qos_phase_seconds_total",
               (("phase", "simulate"), ("tenant", "alice")))
        assert samples[key] == 1.5
        assert samples[("repro_service_queue_depth",
                        (("klass", "batch"),))] == 3

    def test_parse_prometheus_skips_comments_and_junk(self):
        from repro.obs import parse_prometheus

        text = ("# HELP x y\n# TYPE x counter\n"
                "x 1\nmalformed line without value-number nope\n")
        assert parse_prometheus(text) == [("x", {}, 1.0)]
