"""Tests for trace serialisation."""

from itertools import islice

import pytest

from repro.asm import assemble
from repro.core import AnalysisConfig, analyze_machine
from repro.cpu import Machine
from repro.cpu.tracefile import (
    analyze_trace_file,
    load_trace,
    save_trace,
    trace_header,
)
from repro.errors import ReproError

SOURCE = """
        .data
v:      .double 1.5
w:      .word 7
        .text
__start:
        li   $s0, 0
loop:   l.d  $f4, v
        lw   $t0, w
        addu $s0, $s0, $t0
        add.d $f6, $f4, $f4
        slti $t1, $s0, 70
        bne  $t1, $zero, loop
        halt
"""


@pytest.fixture()
def trace_path(tmp_path):
    program = assemble(SOURCE)
    machine = Machine(program)
    path = tmp_path / "run.trace"
    count = save_trace(machine.trace(), path,
                       n_static=len(program.instructions))
    assert count == machine.uid
    return path


class TestRoundTrip:
    def test_header(self, trace_path):
        header = trace_header(trace_path)
        assert header["n_static"] == len(assemble(SOURCE).instructions)

    def test_records_identical(self, trace_path):
        machine = Machine(assemble(SOURCE))
        original = list(machine.trace())
        loaded = list(load_trace(trace_path))
        assert len(loaded) == len(original)
        for fresh, stored in zip(original, loaded):
            assert fresh.uid == stored.uid
            assert fresh.pc == stored.pc
            assert fresh.op == stored.op
            assert fresh.category == stored.category
            assert fresh.srcs == stored.srcs
            assert fresh.out == stored.out
            assert fresh.taken == stored.taken

    def test_floats_exact(self, trace_path):
        loaded = list(load_trace(trace_path))
        fp_values = [
            dyn.out for dyn in loaded if isinstance(dyn.out, float)
        ]
        assert 3.0 in fp_values  # add.d result 1.5 + 1.5
        assert all(isinstance(v, float) for v in fp_values)

    def test_analysis_matches_fresh(self, trace_path):
        config = AnalysisConfig(trees_for=())
        from_file = analyze_trace_file(trace_path, "x", config)
        fresh = analyze_machine(Machine(assemble(SOURCE)), "x", config)
        assert from_file.nodes == fresh.nodes
        assert from_file.arcs == fresh.arcs
        for kind in fresh.predictors:
            assert (
                from_file.predictors[kind].nodes.by_class_name()
                == fresh.predictors[kind].nodes.by_class_name()
            )

    def test_gzip_round_trip(self, tmp_path):
        program = assemble(SOURCE)
        machine = Machine(program)
        path = tmp_path / "run.trace.gz"
        save_trace(islice(machine.trace(), 50), path,
                   n_static=len(program.instructions))
        assert len(list(load_trace(path))) == 50

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_text('{"format": "nope"}\n')
        with pytest.raises(ReproError, match="not a repro-trace"):
            trace_header(path)
        with pytest.raises(ReproError):
            list(load_trace(path))
