"""Unit tests for the sparse memory model."""

import pytest

from repro.cpu import Memory
from repro.errors import SimError


class TestWordAccess:
    def test_uninitialised_reads_zero(self):
        assert Memory().read_word(0x1000) == 0

    def test_round_trip(self):
        memory = Memory()
        memory.write_word(0x1000, 0xDEADBEEF)
        assert memory.read_word(0x1000) == 0xDEADBEEF

    def test_write_masks_to_32_bits(self):
        memory = Memory()
        memory.write_word(0x1000, 0x1_0000_0001)
        assert memory.read_word(0x1000) == 1

    def test_unaligned_word_raises(self):
        memory = Memory()
        with pytest.raises(SimError, match="unaligned"):
            memory.read_word(0x1002)
        with pytest.raises(SimError, match="unaligned"):
            memory.write_word(0x1001, 5)


class TestByteAccess:
    def test_bytes_within_word(self):
        memory = Memory()
        for offset, value in enumerate((0x11, 0x22, 0x33, 0x44)):
            memory.write_byte(0x2000 + offset, value)
        assert memory.read_word(0x2000) == 0x44332211
        for offset, value in enumerate((0x11, 0x22, 0x33, 0x44)):
            assert memory.read_byte(0x2000 + offset) == value

    def test_byte_write_preserves_neighbours(self):
        memory = Memory()
        memory.write_word(0x2000, 0xAABBCCDD)
        memory.write_byte(0x2001, 0x00)
        assert memory.read_word(0x2000) == 0xAABB00DD

    def test_byte_value_masked(self):
        memory = Memory()
        memory.write_byte(0x2000, 0x1FF)
        assert memory.read_byte(0x2000) == 0xFF


class TestHalfAccess:
    def test_half_round_trip(self):
        memory = Memory()
        memory.write_half(0x2000, 0xBEEF)
        memory.write_half(0x2002, 0xDEAD)
        assert memory.read_half(0x2000) == 0xBEEF
        assert memory.read_word(0x2000) == 0xDEADBEEF

    def test_unaligned_half_raises(self):
        with pytest.raises(SimError, match="unaligned"):
            Memory().read_half(0x2001)


class TestFloatAccess:
    def test_float_round_trip(self):
        memory = Memory()
        memory.write_float(0x3000, 2.5)
        assert memory.read_float(0x3000) == 2.5

    def test_uninitialised_float_is_zero(self):
        assert Memory().read_float(0x3000) == 0.0

    def test_unaligned_float_raises(self):
        with pytest.raises(SimError, match="unaligned"):
            Memory().write_float(0x3004, 1.0)


class TestProducers:
    def test_no_producer_initially(self):
        assert Memory().producer(0x1000) is None

    def test_producer_tracks_last_store(self):
        memory = Memory()
        memory.set_producer(0x1000, 5, 2)
        memory.set_producer(0x1000, 9, 3)
        assert memory.producer(0x1000) == (9, 3)

    def test_producer_word_granularity(self):
        memory = Memory()
        memory.set_producer(0x1001, 5, 2)
        assert memory.producer(0x1000) == (5, 2)
        assert memory.producer(0x1003) == (5, 2)

    def test_float_producer_separate_key(self):
        memory = Memory()
        memory.set_float_producer(0x3000, 7, 1)
        assert memory.float_producer(0x3000) == (7, 1)

    def test_footprint(self):
        memory = Memory()
        memory.write_word(0x1000, 1)
        memory.write_float(0x3000, 1.0)
        assert memory.footprint() == 2
