"""Direct tests of the ALU semantic table, including floating point."""

import pytest

from repro.cpu.alu import ALU_FUNCS, BRANCH_FUNCS
from repro.errors import SimError
from repro.isa.layout import to_unsigned


class TestIntegerOps:
    def test_logical(self):
        assert ALU_FUNCS["and"](0b1100, 0b1010) == 0b1000
        assert ALU_FUNCS["or"](0b1100, 0b1010) == 0b1110
        assert ALU_FUNCS["xor"](0b1100, 0b1010) == 0b0110
        assert ALU_FUNCS["nor"](0, 0) == 0xFFFFFFFF

    def test_lui(self):
        assert ALU_FUNCS["lui"](0, 0x1234) == 0x12340000

    def test_immediate_variants_match_register_forms(self):
        for imm_op, reg_op in (("addiu", "addu"), ("andi", "and"),
                               ("ori", "or"), ("xori", "xor")):
            assert ALU_FUNCS[imm_op](100, 7) == ALU_FUNCS[reg_op](100, 7)

    def test_slti_with_negative_immediate(self):
        assert ALU_FUNCS["slti"](to_unsigned(-10), -5) == 1
        assert ALU_FUNCS["slti"](3, -5) == 0

    def test_sltiu_wraps_immediate(self):
        # -1 as an unsigned comparand is 0xFFFFFFFF.
        assert ALU_FUNCS["sltiu"](5, -1) == 1

    def test_div_rem_edge_int_min(self):
        int_min = 0x80000000
        assert ALU_FUNCS["div"](int_min, to_unsigned(-1)) == int_min
        assert ALU_FUNCS["rem"](int_min, to_unsigned(-1)) == 0

    def test_rem_by_zero_raises(self):
        with pytest.raises(SimError):
            ALU_FUNCS["rem"](5, 0)
        with pytest.raises(SimError):
            ALU_FUNCS["remu"](5, 0)
        with pytest.raises(SimError):
            ALU_FUNCS["divu"](5, 0)


class TestFloatOps:
    def test_arithmetic(self):
        assert ALU_FUNCS["add.d"](1.5, 0.25) == 1.75
        assert ALU_FUNCS["sub.d"](1.5, 0.25) == 1.25
        assert ALU_FUNCS["mul.d"](1.5, 4.0) == 6.0
        assert ALU_FUNCS["div.d"](1.5, 0.5) == 3.0

    def test_unary(self):
        assert ALU_FUNCS["neg.d"](2.5, None) == -2.5
        assert ALU_FUNCS["abs.d"](-2.5, None) == 2.5
        assert ALU_FUNCS["mov.d"](2.5, None) == 2.5
        assert ALU_FUNCS["sqrt.d"](9.0, None) == 3.0

    def test_sqrt_negative_raises(self):
        with pytest.raises(SimError):
            ALU_FUNCS["sqrt.d"](-1.0, None)

    def test_float_division_by_zero_raises(self):
        with pytest.raises(SimError):
            ALU_FUNCS["div.d"](1.0, 0.0)

    def test_comparisons(self):
        assert ALU_FUNCS["fslt"](1.0, 2.0) == 1
        assert ALU_FUNCS["fslt"](2.0, 1.0) == 0
        assert ALU_FUNCS["fsle"](2.0, 2.0) == 1
        assert ALU_FUNCS["fseq"](2.0, 2.0) == 1
        assert ALU_FUNCS["fseq"](2.0, 2.1) == 0


class TestConversions:
    def test_itof_signed(self):
        assert ALU_FUNCS["itof"](to_unsigned(-3), None) == -3.0
        assert ALU_FUNCS["itof"](7, None) == 7.0

    def test_ftoi_truncates_toward_zero(self):
        assert ALU_FUNCS["ftoi"](2.9, None) == 2
        assert ALU_FUNCS["ftoi"](-2.9, None) == to_unsigned(-2)

    def test_ftoi_out_of_range_raises(self):
        with pytest.raises(SimError):
            ALU_FUNCS["ftoi"](float("inf"), None)
        with pytest.raises(SimError):
            ALU_FUNCS["ftoi"](1e30, None)


class TestBranchFuncs:
    def test_zero_forms(self):
        minus_one = to_unsigned(-1)
        assert BRANCH_FUNCS["bltz"](minus_one, 0)
        assert not BRANCH_FUNCS["bltz"](0, 0)
        assert BRANCH_FUNCS["blez"](0, 0)
        assert BRANCH_FUNCS["bgez"](0, 0)
        assert BRANCH_FUNCS["bgtz"](1, 0)
        assert not BRANCH_FUNCS["bgtz"](minus_one, 0)
