"""Behavioural tests for the tracing machine."""

import pytest

from repro.asm import assemble
from repro.cpu import Machine
from repro.errors import SimError
from repro.isa import Category
from repro.isa.layout import INPUT_BASE, to_signed

from tests.conftest import run_asm, trace_asm


class TestArithmetic:
    def test_add_wraps(self):
        machine = run_asm(
            "li $t0, 0x7fffffff\naddiu $t0, $t0, 1\n"
            "move $a0, $t0\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == str(-0x80000000)

    def test_signed_division_truncates(self):
        machine = run_asm(
            "li $t0, -7\nli $t1, 2\ndiv $t2, $t0, $t1\n"
            "move $a0, $t2\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "-3"

    def test_remainder_sign_follows_dividend(self):
        machine = run_asm(
            "li $t0, -7\nli $t1, 2\nrem $t2, $t0, $t1\n"
            "move $a0, $t2\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "-1"

    def test_division_by_zero_raises(self):
        with pytest.raises(SimError, match="division by zero"):
            run_asm("li $t0, 1\nli $t1, 0\ndiv $t2, $t0, $t1\nhalt\n")

    def test_sra_sign_extends(self):
        machine = run_asm(
            "li $t0, -8\nsra $t0, $t0, 1\n"
            "move $a0, $t0\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "-4"

    def test_slt_signed_vs_sltu(self):
        machine = run_asm(
            "li $t0, -1\nli $t1, 1\n"
            "slt $t2, $t0, $t1\nsltu $t3, $t0, $t1\n"
            "move $a0, $t2\nli $v0, 1\nsyscall\n"
            "move $a0, $t3\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "10"

    def test_mul_wraps(self):
        machine = run_asm(
            "li $t0, 0x10000\nmul $t1, $t0, $t0\n"
            "move $a0, $t1\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "0"


class TestMemoryOps:
    def test_word_round_trip(self):
        machine = run_asm(
            ".data\nbuf: .space 16\n.text\n"
            "la $t0, buf\nli $t1, 12345\nsw $t1, 4($t0)\n"
            "lw $a0, 4($t0)\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "12345"

    def test_byte_ops_and_sign_extension(self):
        machine = run_asm(
            ".data\nbuf: .space 4\n.text\n"
            "la $t0, buf\nli $t1, 0xFF\nsb $t1, 0($t0)\n"
            "lb $a0, 0($t0)\nli $v0, 1\nsyscall\n"
            "lbu $a0, 0($t0)\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "-1255"

    def test_float_round_trip(self):
        machine = run_asm(
            ".data\nval: .double 3.25\n.text\n"
            "l.d $f12, val\nli $v0, 3\nsyscall\nhalt\n"
        )
        assert machine.output == "3.25"

    def test_static_data_loaded(self):
        machine = run_asm(
            ".data\nx: .word 99\n.text\n"
            "lw $a0, x\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == "99"

    def test_input_words_visible(self):
        machine = run_asm(
            f"li $t0, {INPUT_BASE}\nlw $a0, 8($t0)\n"
            "li $v0, 1\nsyscall\nhalt\n",
            input_words=[7, 8, 9],
        )
        assert machine.output == "9"


class TestControlFlow:
    def test_loop_and_exit_code(self):
        machine = run_asm(
            "li $t0, 0\nli $t1, 0\n"
            "loop: addu $t1, $t1, $t0\naddiu $t0, $t0, 1\n"
            "slti $t2, $t0, 5\nbne $t2, $zero, loop\n"
            "move $a0, $t1\nli $v0, 10\nsyscall\n"
        )
        assert machine.exit_code == 10  # 0+1+2+3+4

    def test_call_and_return(self):
        machine = run_asm(
            "__start: jal double\nmove $a0, $v0\nli $v0, 1\nsyscall\nhalt\n"
            "double: li $v0, 21\nsll $v0, $v0, 1\njr $ra\n"
        )
        assert machine.output == "42"

    def test_return_to_sentinel_halts(self):
        # main without explicit halt returns to the sentinel $ra.
        machine = run_asm("main: li $v0, 7\njr $ra\n")
        assert machine.halted

    def test_instruction_limit(self):
        with pytest.raises(SimError, match="instruction limit"):
            run_asm("x: b x\n", max_instructions=100)

    def test_bad_indirect_target(self):
        with pytest.raises(SimError, match="bad target"):
            run_asm("li $t0, 12345\njr $t0\n")


class TestTraceRecords:
    def test_uids_sequential(self):
        __, records = trace_asm("li $t0, 1\nli $t1, 2\nhalt\n")
        assert [dyn.uid for dyn in records] == [0, 1, 2]

    def test_alu_sources_carry_producers(self):
        __, records = trace_asm(
            "li $t0, 5\nli $t1, 6\naddu $t2, $t0, $t1\nhalt\n"
        )
        add = records[2]
        assert [src.producer for src in add.srcs] == [0, 1]
        assert [src.value for src in add.srcs] == [5, 6]
        assert add.out == 11

    def test_zero_register_reads_are_immediates(self):
        __, records = trace_asm("addu $t0, $zero, $zero\nhalt\n")
        node = records[0]
        assert node.srcs == ()
        assert node.has_imm

    def test_load_has_memory_source(self):
        __, records = trace_asm(
            ".data\nv: .word 7\n.text\n"
            "la $t0, v\nlw $t1, 0($t0)\nhalt\n"
        )
        load = records[2]
        assert load.category is Category.LOAD
        mem = load.srcs[-1]
        assert mem.is_mem and mem.producer is None  # static data = D
        assert load.passthrough == len(load.srcs) - 1
        assert load.out == 7

    def test_store_load_dependence(self):
        __, records = trace_asm(
            ".data\nbuf: .space 4\n.text\n"
            "la $t0, buf\nli $t1, 3\nsw $t1, 0($t0)\nlw $t2, 0($t0)\nhalt\n"
        )
        store = records[3]
        load = records[4]
        assert store.category is Category.STORE
        assert load.srcs[-1].producer == store.uid

    def test_branch_taken_flag(self):
        __, records = trace_asm(
            "li $t0, 1\nbne $t0, $zero, skip\nnop\nskip: halt\n"
        )
        branch = records[1]
        assert branch.is_branch and branch.taken is True
        assert branch.out is None

    def test_static_counts(self):
        machine, __ = trace_asm(
            "li $t0, 0\nloop: addiu $t0, $t0, 1\nslti $t1, $t0, 3\n"
            "bne $t1, $zero, loop\nhalt\n"
        )
        assert machine.static_counts[1] == 3
        assert machine.static_counts[0] == 1

    def test_syscall_consumes_inputs(self):
        __, records = trace_asm("li $a0, 3\nli $v0, 1\nsyscall\nhalt\n")
        syscall = records[2]
        assert len(syscall.srcs) == 2  # $v0 then $a0
        values = [src.value for src in syscall.srcs]
        assert values == [1, 3]

    def test_output_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
