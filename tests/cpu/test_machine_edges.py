"""Edge-case tests for the machine: halfwords, jalr, syscalls, listings."""

import pytest

from repro.asm import assemble
from repro.cpu import Machine
from repro.errors import SimError

from tests.conftest import run_asm, trace_asm


class TestHalfwordOps:
    def test_lh_sign_extends(self):
        machine = run_asm(
            ".data\nbuf: .space 4\n.text\n"
            "la $t0, buf\nli $t1, 0x8000\nsh $t1, 0($t0)\n"
            "lh $a0, 0($t0)\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == str(-0x8000)

    def test_lhu_zero_extends(self):
        machine = run_asm(
            ".data\nbuf: .space 4\n.text\n"
            "la $t0, buf\nli $t1, 0x8000\nsh $t1, 0($t0)\n"
            "lhu $a0, 0($t0)\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == str(0x8000)

    def test_half_data_directive(self):
        machine = run_asm(
            ".data\nh: .half 0x1234, 0x5678\n.text\n"
            "la $t0, h\nlhu $a0, 2($t0)\nli $v0, 1\nsyscall\nhalt\n"
        )
        assert machine.output == str(0x5678)


class TestIndirectJumps:
    def test_jalr_calls_and_links(self):
        machine = run_asm(
            "__start:\n"
            "        la $t0, target\n"
            "        jalr $t0\n"
            "        move $a0, $v0\nli $v0, 1\nsyscall\nhalt\n"
            "target: li $v0, 55\n"
            "        jr $ra\n"
        )
        assert machine.output == "55"

    def test_jump_table_via_jr(self):
        machine = run_asm(
            "__start:\n"
            "        li $t0, 1\n"              # select case 1
            "        la $t1, table\n"
            "        sll $t0, $t0, 2\n"
            "        addu $t1, $t1, $t0\n"
            "        lw $t2, 0($t1)\n"
            "        jr $t2\n"
            "case0:  li $a0, 100\n        b print\n"
            "case1:  li $a0, 200\n        b print\n"
            "print:  li $v0, 1\nsyscall\nhalt\n"
            "        .data\n"
            "table:  .word case0, case1\n"
        )
        assert machine.output == "200"

    def test_jr_passthrough_in_trace(self):
        __, records = trace_asm(
            "__start: la $t0, done\njr $t0\nnop\ndone: halt\n"
        )
        jr = next(dyn for dyn in records if dyn.op == "jr")
        assert jr.passthrough == 0
        assert jr.out == jr.srcs[0].value


class TestSyscalls:
    def test_unknown_syscall_code_raises(self):
        with pytest.raises(SimError, match="unknown syscall"):
            run_asm("li $v0, 99\nsyscall\nhalt\n")

    def test_print_float_formatting(self):
        machine = run_asm(
            ".data\nx: .double 0.5\n.text\n"
            "l.d $f12, x\nli $v0, 3\nsyscall\nhalt\n"
        )
        assert machine.output == "0.5"

    def test_exit_code_propagates(self):
        machine = run_asm("li $a0, -7\nli $v0, 10\nsyscall\n")
        assert machine.exit_code == -7

    def test_trace_after_disabled_tracing_raises(self):
        machine = Machine(assemble("halt"), tracing=False)
        with pytest.raises(SimError, match="tracing disabled"):
            list(machine.trace())


class TestProgramListing:
    def test_listing_shows_labels_and_indices(self):
        program = assemble("main: addiu $t0, $zero, 1\nloop: b loop\n")
        listing = program.listing()
        assert "main:" in listing
        assert "loop:" in listing
        assert "addiu" in listing

    def test_render_covers_formats(self):
        program = assemble(
            ".data\nv: .word 0\n.text\n"
            "addu $t0, $t1, $t2\n"
            "lw $t0, 4($sp)\n"
            "sw $t0, 4($sp)\n"
            "x: beq $t0, $t1, x\n"
            "jal x\n"
            "jr $ra\n"
            "add.d $f0, $f2, $f4\n"
            "nop\n"
        )
        rendered = [instr.render() for instr in program.instructions]
        assert "addu $t0, $t1, $t2" in rendered
        assert "lw $t0, 4($sp)" in rendered
        assert "sw $t0, 4($sp)" in rendered
        assert any(text.startswith("beq") for text in rendered)
        assert "nop" in rendered


class TestMachineResult:
    def test_result_snapshot(self):
        machine = Machine(assemble("li $a0, 1\nli $v0, 1\nsyscall\nhalt\n"),
                          tracing=False)
        result = machine.run()
        assert result.halted
        assert result.output == "1"
        assert result.instructions == 4

    def test_run_program_helper(self):
        from repro.cpu import run_program

        result = run_program(assemble("li $a0, 3\nli $v0, 10\nsyscall\n"))
        assert result.exit_code == 3
