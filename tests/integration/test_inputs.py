"""Tests for the synthetic input generators."""

from repro.workloads import inputs


class TestRng:
    def test_deterministic(self):
        a = inputs.Rng(42)
        b = inputs.Rng(42)
        assert [a.next_u32() for __ in range(10)] == [
            b.next_u32() for __ in range(10)
        ]

    def test_seeds_differ(self):
        a = [inputs.Rng(1).next_u32() for __ in range(5)]
        b = [inputs.Rng(2).next_u32() for __ in range(5)]
        assert a != b

    def test_below_in_range(self):
        rng = inputs.Rng(7)
        for __ in range(1000):
            assert 0 <= rng.below(10) < 10

    def test_word_in_range(self):
        rng = inputs.Rng(7)
        for __ in range(1000):
            assert -5 <= rng.word(-5, 5) <= 5

    def test_unit_float_in_range(self):
        rng = inputs.Rng(7)
        for __ in range(1000):
            assert 0.0 <= rng.unit_float() < 1.0


class TestGenerators:
    def test_words(self):
        values = inputs.words(100, 10, 20, seed=1)
        assert len(values) == 100
        assert all(10 <= v <= 20 for v in values)

    def test_bytes_with_runs_has_repeats(self):
        stream = inputs.bytes_with_runs(2000, 64, 5, seed=3)
        assert all(0 <= b < 64 for b in stream)
        repeats = sum(
            1 for a, b in zip(stream, stream[1:]) if a == b
        )
        # run_bias 5/8 makes repeats common — that's what makes the
        # stream compressible.
        assert repeats > 500

    def test_floats_range(self):
        values = inputs.floats(100, -1.0, 1.0, seed=4)
        assert all(-1.0 <= v < 1.0 for v in values)

    def test_board_stone_count(self):
        cells = inputs.board(19, 50, seed=5)
        assert len(cells) == 361
        assert sum(1 for c in cells if c) == 50
        assert set(cells) <= {0, 1, 2}

    def test_board_alternates_colours(self):
        cells = inputs.board(19, 50, seed=5)
        blacks = sum(1 for c in cells if c == 1)
        whites = sum(1 for c in cells if c == 2)
        assert abs(blacks - whites) <= 1

    def test_tiny_isa_program_encoding(self):
        program = inputs.tiny_isa_program(200, seed=6)
        for index, insn in enumerate(program):
            opcode = (insn >> 16) & 7
            imm = insn & 255
            assert 0 <= opcode < 8
            if opcode == 6:  # backward branches stay in range
                assert imm <= max(index, 1)

    def test_perl_text_is_printable(self):
        text = inputs.perl_text(500, seed=7)
        assert len(text) == 500
        allowed = set(range(ord("a"), ord("z") + 1)) | {ord(";"), ord(" ")}
        assert set(text) <= allowed

    def test_packed_transactions(self):
        stream = inputs.packed_transactions(100, 256, seed=8)
        for packed in stream:
            assert 0 <= (packed & 0xFFFF) < 256
            assert 0 <= (packed >> 16) < 4
