"""Integration tests for the SPEC95-analogue workload suite."""

import pytest

from repro.workloads import (
    SUITE,
    float_workloads,
    get_workload,
    integer_workloads,
)

#: Expected program output per workload at scale 1.  These pin down
#: the *semantics* of every workload: an accidental change to the
#: compiler, assembler, machine or input generators that alters any
#: computed result fails here.
GOLDEN_OUTPUTS = {
    "com": "1370 1626 29290",
    "gcc": "3 672",
    "go": "720 4811",
    "ijp": "8784",
    "per": "101 597 26870",
    "m88": "8000 2648 2647 34218",
    "vor": "1221 83 78 988",
    "xli": "564596 4800",
    "app": "22.3541",
    "fpp": "2.98259 2.23694",
    "mgr": "19.6079",
    "swm": "33793.1 1.36657",
}


class TestSuiteStructure:
    def test_twelve_workloads(self):
        assert len(SUITE) == 12

    def test_eight_integer_four_float(self):
        assert len(integer_workloads()) == 8
        assert len(float_workloads()) == 4

    def test_names_unique(self):
        names = [w.name for w in SUITE]
        assert len(set(names)) == len(names)

    def test_lookup_by_both_names(self):
        assert get_workload("com") is get_workload("129.compress")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    def test_sources_exist(self):
        for workload in SUITE:
            assert workload.source_path.exists(), workload.name
            assert len(workload.source()) > 200


@pytest.mark.parametrize("name", sorted(GOLDEN_OUTPUTS))
def test_golden_output(name):
    workload = get_workload(name)
    machine = workload.machine(scale=1, tracing=False)
    result = machine.run()
    assert result.halted
    assert result.output.strip() == GOLDEN_OUTPUTS[name]


@pytest.mark.parametrize("name", [w.name for w in SUITE])
def test_determinism(name):
    workload = get_workload(name)
    first = [
        (dyn.pc, dyn.out)
        for __, dyn in zip(range(2000), workload.machine().trace())
    ]
    second = [
        (dyn.pc, dyn.out)
        for __, dyn in zip(range(2000), workload.machine().trace())
    ]
    assert first == second


@pytest.mark.parametrize("name", ["com", "swm"])
def test_scale_grows_work(name):
    workload = get_workload(name)
    small = workload.machine(scale=1, tracing=False)
    small.run()
    big = workload.machine(scale=2, tracing=False)
    big.run()
    assert big.uid > small.uid * 1.4


def test_fp_workloads_touch_fp_inputs():
    for workload in float_workloads():
        words, floats = workload.make_inputs(1)
        assert floats, workload.name


def test_int_workloads_have_word_inputs():
    for workload in integer_workloads():
        words, floats = workload.make_inputs(1)
        assert words, workload.name


def test_gcc_inputs_use_paper_masks():
    words, __ = get_workload("gcc").make_inputs(1)
    assert 0x8000BFFF in words and 0xFFFFFFF0 in words
