"""Tests for the report layer: tables, experiments and the CLI."""

import pytest

from repro.report import (
    ExperimentConfig,
    figure5,
    figure6,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    run_suite,
    table1,
)
from repro.report.tables import (
    Table,
    bucket_label,
    cumulative_percent,
    log2_bucket_edges,
    percentage,
)

#: Small budget keeps this module fast; results are cached in-process.
CONFIG = ExperimentConfig(max_instructions=8_000)


@pytest.fixture(scope="module")
def results():
    return run_suite(CONFIG)


class TestTableRendering:
    def test_alignment_and_title(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 22.125)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "alpha" in text and "22.12" in text

    def test_notes_rendered(self):
        table = Table("T", ["x"])
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_percentage(self):
        assert percentage(1, 4) == 25.0
        assert percentage(5, 0) == 0.0

    def test_log2_edges(self):
        assert log2_bucket_edges(9) == [1, 2, 4, 8, 16]
        assert log2_bucket_edges(1) == [1]

    def test_bucket_label(self):
        assert bucket_label(3, 4) == "3-4"
        assert bucket_label(2, 2) == "2"

    def test_cumulative_percent(self):
        hist = {1: 2, 3: 2}
        assert cumulative_percent(hist, [1, 2, 4]) == [50.0, 50.0, 100.0]

    def test_cumulative_percent_weighted(self):
        hist = {1: 1, 3: 1}
        curve = cumulative_percent(hist, [1, 4], weight=lambda v: v)
        assert curve == [25.0, 100.0]


class TestExperiments:
    def test_table1_covers_suite(self, results):
        table = table1(results)
        assert len(table.rows) == 12
        for row in table.rows:
            assert row[2] > 0 and row[3] > 0  # nodes, edges

    def test_figure5_percentages_bounded(self, results):
        table = figure5(results)
        for row in table.rows:
            for cell in row[2:]:
                assert 0.0 <= cell <= 100.0

    def test_figure5_has_averages(self, results):
        table = figure5(results)
        first_column = [row[0] for row in table.rows]
        assert "INT" in first_column and "FLOAT" in first_column

    def test_figure6_detail_sums_to_overall(self, results):
        """Figure 6's arc generation classes partition Figure 5's
        arc-generation total."""
        overall = figure5(results)
        __, arc_detail = figure6(results)
        for overall_row, detail_row in zip(overall.rows, arc_detail.rows):
            assert overall_row[0] == detail_row[0]
            assert overall_row[1] == detail_row[1]
            arc_gen = overall_row[5]
            detail_total = sum(detail_row[2:])
            assert detail_total == pytest.approx(arc_gen, abs=1e-9)

    def test_figure9_combo_counts_bounded(self, results):
        overall, combos = figure9(results)
        for row in combos.rows:
            for cell in row[1:]:
                assert 0.0 <= cell <= 100.0
        # Exact combinations are disjoint: their sum is bounded by the
        # overall propagate share (<= 100).
        for column in (1, 2, 3):
            assert sum(row[column] for row in combos.rows) <= 100.0

    def test_figure10_curves_cumulative(self, results):
        table = figure10(results, "gcc", "context")
        gens = [row[1] for row in table.rows]
        assert gens == sorted(gens)
        assert gens[-1] == pytest.approx(100.0)

    def test_figure11_requires_trees(self, results):
        with pytest.raises(ValueError, match="tree tracking"):
            figure11(results, workloads=("com",), predictor="last")

    def test_figure12_bucket_structure(self, results):
        table = figure12(results)
        assert table.rows[0][0] == "1"
        assert table.rows[-1][0] == "257+"

    def test_figure13_partitions_branches(self, results):
        table = figure13(results)
        for column in (1, 2, 3):
            assert sum(row[column] for row in table.rows) == pytest.approx(
                100.0
            )

    def test_results_cached(self):
        first = run_suite(CONFIG)
        second = run_suite(CONFIG)
        assert first["com"] is second["com"]


class TestCli:
    def test_cli_single_exhibit(self, capsys):
        from repro.report.__main__ import main

        code = main([
            "--exhibit", "table1", "--max-instructions", "2000",
            "--workloads", "com,go",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "com" in captured.out

    def test_cli_figure(self, capsys):
        from repro.report.__main__ import main

        code = main([
            "--exhibit", "fig12", "--max-instructions", "2000",
            "--workloads", "com",
        ])
        assert code == 0
        assert "Figure 12" in capsys.readouterr().out


class TestDetailConsistency:
    """Figures 6-8 must partition Figure 5's aggregate bars exactly."""

    def test_figure7_nodes_partition_propagation(self, results):
        from repro.report import figure7

        overall = figure5(results)
        node_detail, __ = figure7(results)
        for overall_row, detail_row in zip(overall.rows, node_detail.rows):
            node_prop = overall_row[3]
            assert sum(detail_row[2:]) == pytest.approx(node_prop)

    def test_figure7_arcs_partition_propagation(self, results):
        from repro.report import figure7

        overall = figure5(results)
        __, arc_detail = figure7(results)
        for overall_row, detail_row in zip(overall.rows, arc_detail.rows):
            arc_prop = overall_row[6]
            # wl + r + 1 use classes; rd:p,p cannot exist (D arcs are
            # <n,*>), so the three classes cover everything.
            assert sum(detail_row[2:]) == pytest.approx(arc_prop)

    def test_figure8_nodes_partition_termination(self, results):
        from repro.report import figure8

        overall = figure5(results)
        node_detail, __ = figure8(results)
        for overall_row, detail_row in zip(overall.rows, node_detail.rows):
            node_term = overall_row[4]
            assert sum(detail_row[2:]) == pytest.approx(node_term)

    def test_figure8_arcs_partition_termination(self, results):
        from repro.report import figure8

        overall = figure5(results)
        __, arc_detail = figure8(results)
        for overall_row, detail_row in zip(overall.rows, arc_detail.rows):
            arc_term = overall_row[7]
            assert sum(detail_row[2:]) == pytest.approx(arc_term)

    def test_critical_points_exhibit(self, results):
        from repro.report import critical_points

        table = critical_points(results, predictor="stride", top=3)
        assert table.rows
        # miss % column bounded.
        for row in table.rows:
            assert 0.0 <= row[5] <= 100.0
