"""The paper's running example (Figs. 1 and 3), asserted quantitatively.

Fig. 1 shows a 64-iteration loop from 126.gcc testing bits of a
two-word register mask, with the value sequence of each instruction.
Fig. 3 shows the DPG of the first iterations under a stride predictor.
These tests assemble the same loop and check that the model reproduces
the paper's observations about it.
"""

from collections import defaultdict
from itertools import islice

import pytest

from repro.asm import assemble
from repro.core import Behavior, build_dpg
from repro.cpu import Machine
from repro.predictors import StridePredictor


@pytest.fixture(scope="module")
def loop_program(request):
    source = """
        .data
regs_ever_live:   .word 0x8000bfff, 0xfffffff0
        .text
__start:
        la   $19, regs_ever_live
        add  $6, $0, $0
LL1:    srl  $2, $6, 5
        sll  $2, $2, 2
        addu $2, $2, $19
        lw   $2, 0($2)
        andi $3, $6, 31
        srlv $2, $2, $3
        andi $2, $2, 1
        beq  $2, $0, LL2
        nop
LL2:    addiu $6, $6, 1
        slti $2, $6, 64
        bne  $2, $0, LL1
        halt
"""
    return assemble(source)


@pytest.fixture(scope="module")
def sequences(loop_program):
    machine = Machine(loop_program)
    out = defaultdict(list)
    for dyn in machine.trace():
        if dyn.out is not None:
            out[dyn.pc].append(dyn.out)
        elif dyn.taken is not None:
            out[dyn.pc].append(dyn.taken)
    return out


class TestFig1ValueSequences:
    """The regular expressions printed beside Fig. 1's instructions."""

    def test_register_6_counts_0_to_64(self, sequences):
        # Instruction 9 in the paper: addiu $6, $6, 1.
        assert sequences[12] == list(range(1, 65))

    def test_srl_produces_32_zeros_then_32_ones(self, sequences):
        assert sequences[3] == [0] * 32 + [1] * 32

    def test_sll_produces_0_then_4(self, sequences):
        assert sequences[4] == [0] * 32 + [4] * 32

    def test_addresses_step_by_4(self, sequences):
        values = set(sequences[5])
        assert len(values) == 2
        low, high = sorted(values)
        assert high - low == 4

    def test_mask_words_loaded(self, sequences):
        assert set(sequences[6]) == {0x8000BFFF, 0xFFFFFFF0}

    def test_bit_index_cycles_0_to_31(self, sequences):
        assert sequences[7] == list(range(32)) * 2

    def test_bit_pattern_matches_masks(self, sequences):
        # (1)^14 0 1 (0)^15 1 (0)^4 (1)^28 for these two mask words.
        bits = sequences[9]
        expected = []
        for word in (0x8000BFFF, 0xFFFFFFF0):
            for bit in range(32):
                expected.append((word >> bit) & 1)
        assert bits == expected

    def test_branch_direction_complements_bit(self, sequences):
        bits = sequences[9]
        directions = sequences[10]  # beq $2, $0: taken when bit == 0
        assert directions == [bit == 0 for bit in bits]

    def test_loop_branch_taken_63_times(self, sequences):
        assert sequences[14] == [True] * 63 + [False]


class TestStridePredictorOnRegister6:
    def test_lock_on_after_two_strides(self):
        """The paper: 'After the second value in the sequence, a
        typical stride predictor would recognize the stride and start
        making correct predictions.'"""
        predictor = StridePredictor()
        hits = [predictor.see(9, value) for value in range(65)]
        assert hits[0] is False
        assert all(hits[3:])


class TestFig3DPG:
    def test_induction_arc_becomes_generate_then_propagates(
        self, loop_program
    ):
        machine = Machine(loop_program)
        graph = build_dpg(islice(machine.trace(), 120), predictor="stride")
        # Find the addiu $6 nodes after 2-delta warm-up (the stride is
        # confirmed on the third occurrence): their output must be
        # predicted and they generate or propagate.
        late_addiu = [
            uid for uid, data in graph.nodes(data=True)
            if data.get("pc") == 12 and uid > 45
        ]
        assert late_addiu
        for uid in late_addiu:
            assert graph.nodes[uid]["out_predicted"] is True
            assert graph.nodes[uid]["behavior"] in (
                Behavior.GENERATE, Behavior.PROPAGATE
            )

    def test_shift_chain_propagates(self, loop_program):
        machine = Machine(loop_program)
        graph = build_dpg(islice(machine.trace(), 120), predictor="stride")
        # srl -> sll arcs propagate once warmed up.
        propagating = [
            data["behavior"] is Behavior.PROPAGATE
            for producer, consumer, data in graph.edges(data=True)
            if graph.nodes[consumer].get("pc") == 4
            and not isinstance(producer, tuple)
            and graph.nodes[producer].get("pc") == 3
            and consumer > 45
        ]
        assert propagating and all(propagating)

    def test_mask_loads_read_d_nodes(self, loop_program):
        machine = Machine(loop_program)
        graph = build_dpg(islice(machine.trace(), 700), predictor="stride")
        d_nodes = [
            node for node, data in graph.nodes(data=True)
            if data.get("kind") == "data"
        ]
        # Two mask words: at least two D nodes feed the lw instances.
        mask_feeders = 0
        for node in d_nodes:
            consumers = {
                graph.nodes[consumer].get("pc")
                for __, consumer in graph.out_edges(node)
            }
            if 6 in consumers:
                mask_feeders += 1
        assert mask_feeders == 2
