"""Tests for the workload CLI and suite plumbing."""

import pytest

from repro.workloads import get_workload
from repro.workloads.__main__ import main


class TestWorkloadsCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in ("com", "gcc", "swm"):
            assert name in output

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "129.compress" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["--run", "nothere"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_emit_asm(self, capsys):
        assert main(["--run", "com", "--emit-asm"]) == 0
        asm = capsys.readouterr().out
        assert "jal main" in asm
        assert "g_hash_code" in asm

    def test_run_small_workload(self, capsys):
        assert main(["--run", "fpp"]) == 0
        captured = capsys.readouterr()
        assert "2.98259" in captured.out
        assert "145.fpppp" in captured.err


class TestWorkloadPlumbing:
    def test_program_cached(self):
        workload = get_workload("com")
        assert workload.program() is workload.program()

    def test_machine_independence(self):
        workload = get_workload("com")
        first = workload.machine(tracing=False)
        second = workload.machine(tracing=False)
        first.run()
        # The second machine is untouched by the first's run.
        assert second.uid == 0
        assert not second.halted

    def test_max_instructions_forwarded(self):
        from repro.errors import SimError

        workload = get_workload("com")
        machine = workload.machine(tracing=False, max_instructions=100)
        with pytest.raises(SimError, match="instruction limit"):
            machine.run()

    def test_source_matches_program_file(self):
        workload = get_workload("xli")
        assert "mark-sweep" in workload.source() or "cons" in workload.source()
