"""Smoke tests keeping the example scripts from rotting.

The fast examples run end to end; the slow ones (which analyse 100k+
instruction traces) are only checked for importability and a main()
entry point, so the unit-test suite stays quick.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Fast enough to execute in the unit-test suite.
FAST_EXAMPLES = ["predictor_comparison.py", "gcc_loop.py"]


def test_example_inventory():
    assert set(FAST_EXAMPLES) <= set(ALL_EXAMPLES)
    assert len(ALL_EXAMPLES) >= 8


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_examples_define_main(name):
    spec = importlib.util.spec_from_file_location(
        name[:-3], EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # import-time work only
    assert callable(getattr(module, "main", None)), name


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_gcc_loop_reproduces_fig1_sequences():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "gcc_loop.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = proc.stdout
    # The Fig. 1 value-sequence signatures.
    assert "(0)^32 (1)^32" in out
    assert "(0x8000bfff)^32" in out
    assert "(T)^63" in out
