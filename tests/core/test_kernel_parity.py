"""Differential pinning of the columnar kernel to the reference loop.

The columnar engine's correctness contract is byte-identity: for every
supported configuration, ``result_to_dict`` of the kernel's
:class:`AnalysisResult` must serialise to exactly the JSON the
reference per-instruction analyzer produces — same counts, same
Counter insertion order, same float bits.  These tests pin that
contract over the fixed workload suite, a ``gen:`` sample grid, config
variants that exercise every classification path, and the v2
trace-file decode entry.
"""

from __future__ import annotations

import json

import pytest

from repro.core import AnalysisConfig, KernelUnsupportedError, analyze_trace
from repro.core.analysis import analyze_many
from repro.core.export import result_to_dict
from repro.core.kernel import (
    AnalysisEngine,
    TraceColumns,
    columnar_unsupported,
    resolve_engine,
)
from repro.gen import generated_workload
from repro.obs import Recorder, recording
from repro.workloads import SUITE, get_workload

#: Budget keeping the full-suite sweep inside tier-1 time.
BUDGET = 4_000

#: Config variants covering every kernel code path: default bank,
#: parameterized specs, hybrid + branch-predictor variants, tracking
#: toggles, tree tracking per bank, tiny budgets.
VARIANTS = {
    "default": AnalysisConfig(max_instructions=BUDGET),
    "hybrid": AnalysisConfig(
        predictors=("hybrid", "last"), max_instructions=BUDGET
    ),
    "local-branch": AnalysisConfig(
        branch_predictor="local", gshare_bits=10, max_instructions=BUDGET
    ),
    "params": AnalysisConfig(
        predictors=("last(bits=8,hysteresis=0)", "context(l1=8,l2=10,order=2)",
                    "stride(bits=8)"),
        max_instructions=BUDGET,
    ),
    "trees-all": AnalysisConfig(
        trees_for=("last", "stride", "context"), gen_cap=4,
        max_instructions=BUDGET,
    ),
    "tracking-off": AnalysisConfig(
        track_sequences=False, track_branches=False, track_unpred=False,
        track_paths=False, max_instructions=BUDGET,
    ),
    "tiny": AnalysisConfig(max_instructions=7),
}


def _trace_of(name: str):
    machine = get_workload(name).machine()
    records = list(machine.trace())
    return records, len(machine.program.instructions)


def _dump(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=False)


def _assert_engines_agree(records, n_static, config, name="trace",
                          profile_counts=None):
    reference = analyze_trace(records, n_static, name=name, config=config,
                              profile_counts=profile_counts,
                              engine="reference")
    columnar = analyze_trace(records, n_static, name=name, config=config,
                             profile_counts=profile_counts,
                             engine="columnar")
    assert _dump(columnar) == _dump(reference)
    # The segment-parallel kernel shares the byte-identity contract:
    # splitting the columnar pass must be invisible in the output
    # (docs/sharding.md).  Budgets too small to split fall back to the
    # serial kernel inside analyze_columns_segmented — still identical.
    segmented = analyze_trace(records, n_static, name=name, config=config,
                              profile_counts=profile_counts,
                              engine="columnar", segments=3)
    assert _dump(segmented) == _dump(reference)


@pytest.mark.parametrize("name", [w.name for w in SUITE])
def test_suite_workloads_identical(name):
    records, n_static = _trace_of(name)
    _assert_engines_agree(records, n_static,
                          AnalysisConfig(max_instructions=BUDGET),
                          name=name)


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_config_variants_identical(variant):
    records, n_static = _trace_of("com")
    _assert_engines_agree(records, n_static, VARIANTS[variant], name="com")


@pytest.mark.parametrize("gen_name", [
    "gen:loopy@1",
    "gen:branchy@2",
    "gen:pointer-chase@3",
    "gen:float-kernel@4",
    "gen:callgraph@5",
])
def test_generated_grid_identical(gen_name):
    machine = generated_workload(gen_name).machine()
    records = list(machine.trace())
    n_static = len(machine.program.instructions)
    _assert_engines_agree(records, n_static,
                          AnalysisConfig(max_instructions=BUDGET),
                          name=gen_name)


def test_profiled_counts_identical():
    records, n_static = _trace_of("go")
    counts = [0] * 4096
    for dyn in records:
        if dyn.pc < len(counts):
            counts[dyn.pc] += 1
    _assert_engines_agree(records, n_static,
                          AnalysisConfig(max_instructions=BUDGET),
                          name="go", profile_counts=counts)


def test_analyze_many_identical():
    records, n_static = _trace_of("com")
    configs = [
        AnalysisConfig(max_instructions=BUDGET),
        AnalysisConfig(predictors=("hybrid",), max_instructions=2_000),
        AnalysisConfig(gshare_bits=8, max_instructions=BUDGET),
    ]
    reference = analyze_many(records, n_static, configs, name="com",
                             engine="reference")
    columnar = analyze_many(records, n_static, configs, name="com",
                            engine="columnar")
    assert [_dump(r) for r in columnar] == [_dump(r) for r in reference]
    segmented = analyze_many(records, n_static, configs, name="com",
                             engine="columnar", segments=4)
    assert [_dump(r) for r in segmented] == [_dump(r) for r in reference]


def test_columns_accepted_by_both_engines():
    records, n_static = _trace_of("com")
    columns = TraceColumns.from_records(records, n_static)
    config = AnalysisConfig(max_instructions=BUDGET)
    from_records = analyze_trace(records, n_static, name="com",
                                 config=config, engine="columnar")
    from_columns = analyze_trace(columns, n_static, name="com",
                                 config=config, engine="columnar")
    # The reference engine rebuilds records from columns transparently.
    reference = analyze_trace(columns, n_static, name="com",
                              config=config, engine="reference")
    assert _dump(from_columns) == _dump(from_records) == _dump(reference)


def test_v2_file_decode_identical(tmp_path):
    from repro.cpu.tracefile import read_trace_columns, save_trace

    records, n_static = _trace_of("app")  # float workload: IEEE paths
    path = tmp_path / "app.trace.gz"
    save_trace(records, path, n_static, complete=True, workload="app")
    __, columns = read_trace_columns(path)
    config = AnalysisConfig(max_instructions=BUDGET)
    from_file = analyze_trace(columns, n_static, name="app",
                              config=config, engine="columnar")
    reference = analyze_trace(records, n_static, name="app",
                              config=config, engine="reference")
    assert _dump(from_file) == _dump(reference)


# ----------------------------------------------------------------------
# Engine selection semantics.
# ----------------------------------------------------------------------

def test_unsupported_configs_detected():
    assert columnar_unsupported(AnalysisConfig()) is None
    assert columnar_unsupported(AnalysisConfig(track_reuse=True))
    five = ("last", "stride", "context", "hybrid", "last(bits=8)")
    assert columnar_unsupported(AnalysisConfig(predictors=five))


def test_forced_columnar_raises_on_unsupported():
    records, n_static = _trace_of("com")
    with pytest.raises(KernelUnsupportedError):
        analyze_trace(records, n_static,
                      config=AnalysisConfig(track_reuse=True,
                                            max_instructions=100),
                      engine="columnar")


def test_auto_falls_back_and_counts():
    records, n_static = _trace_of("com")
    config = AnalysisConfig(track_reuse=True, max_instructions=2_000)
    with recording(Recorder()) as rec:
        auto = analyze_trace(records, n_static, config=config,
                             engine="auto")
        assert rec.snapshot()["counters"].get("analyze.fallback") == 1
    reference = analyze_trace(records, n_static, config=config,
                              engine="reference")
    assert _dump(auto) == _dump(reference)


def test_resolve_engine_contract():
    supported = (AnalysisConfig(),)
    unsupported = (AnalysisConfig(track_reuse=True),)
    assert resolve_engine("auto", supported) is AnalysisEngine.COLUMNAR
    assert resolve_engine("auto", unsupported, record=False) \
        is AnalysisEngine.REFERENCE
    assert resolve_engine("reference", supported) \
        is AnalysisEngine.REFERENCE
    with pytest.raises(KernelUnsupportedError):
        resolve_engine("columnar", unsupported)
    with pytest.raises(ValueError):
        resolve_engine("vectorised", supported)
