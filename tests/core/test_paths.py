"""Tests for the path/tree tracker on hand-built dataflows."""

from repro.core.events import GenClass, InKind
from repro.core.paths import PathTracker


def make_tracker(trees=True):
    return PathTracker(track_trees=trees)


class TestGenerateNodes:
    def test_generate_node_counted_per_class(self):
        tracker = make_tracker()
        tracker.begin_node()
        tracker.end_node(True, InKind.II)       # uid 0: generate (I)
        tracker.finalize()
        assert tracker.stats.gen_counts[GenClass.I] == 1
        assert tracker.stats.propagate_elements == 0

    def test_generate_node_classes(self):
        tracker = make_tracker()
        for kind, cls in (
            (InKind.II, GenClass.I),
            (InKind.NN, GenClass.N),
            (InKind.IN, GenClass.M),
        ):
            tracker.begin_node()
            tracker.end_node(True, kind)
            assert tracker.stats.gen_counts[cls] >= 1


class TestPropagationChain:
    def build_chain(self, length):
        """uid 0 generates; uids 1..length each consume the previous."""
        tracker = make_tracker()
        tracker.begin_node()
        tracker.end_node(True, InKind.II)
        for uid in range(1, length + 1):
            tracker.begin_node()
            tracker.feed_propagate_arc(uid - 1)
            tracker.end_node(True, InKind.PP)
        tracker.finalize()
        return tracker

    def test_chain_counts_arcs_and_nodes(self):
        tracker = self.build_chain(3)
        # 3 propagate arcs + 3 propagate nodes.
        assert tracker.stats.propagate_elements == 6

    def test_chain_depth(self):
        tracker = self.build_chain(3)
        # Longest path: arc(1) node(2) arc(3) node(4) arc(5) node(6).
        assert dict(tracker.trees.depth_hist) == {6: 1}
        assert tracker.trees.aggregate_propagation() == 6

    def test_chain_influence_single_generate(self):
        tracker = self.build_chain(4)
        assert dict(tracker.trees.influence_hist) == {1: 8}

    def test_distance_histogram(self):
        tracker = self.build_chain(2)
        # Elements at distances 1,2 (first arc+node) and 3,4.
        assert dict(tracker.trees.distance_hist) == {1: 1, 2: 1, 3: 1, 4: 1}

    def test_class_mask_propagates(self):
        tracker = self.build_chain(5)
        assert tracker.stats.class_counts[GenClass.I] == 10
        assert tracker.stats.combo_counts[1 << GenClass.I] == 10


class TestMergingTrees:
    def test_two_generates_merge_at_node(self):
        tracker = make_tracker()
        tracker.begin_node()
        tracker.end_node(True, InKind.II)       # uid 0: generate I
        tracker.begin_node()
        tracker.end_node(True, InKind.NN)       # uid 1: generate N
        tracker.begin_node()
        tracker.feed_propagate_arc(0)
        tracker.feed_propagate_arc(1)
        tracker.end_node(True, InKind.PP)       # uid 2: merge node
        tracker.finalize()
        stats = tracker.stats
        # 2 arcs + 1 node propagate.
        assert stats.propagate_elements == 3
        # The merge node is influenced by both classes.
        mask = (1 << GenClass.I) | (1 << GenClass.N)
        assert stats.combo_counts[mask] == 1
        assert dict(tracker.trees.influence_hist)[2] == 1
        # Each generate's tree contains 2 elements (its arc + the node).
        assert tracker.trees.agg_hist[2] == 2 * 2

    def test_generate_arc_starts_tree(self):
        tracker = make_tracker()
        tracker.begin_node()
        tracker.end_node(False, InKind.NN)      # uid 0: unpredictable value
        tracker.begin_node()
        tracker.feed_generate_arc(GenClass.C)   # <n,p> arc into uid 1
        tracker.end_node(True, InKind.PP)       # uid 1 propagates
        tracker.finalize()
        assert tracker.stats.gen_counts[GenClass.C] == 1
        assert tracker.stats.propagate_elements == 1   # just the node
        assert dict(tracker.trees.depth_hist) == {1: 1}

    def test_unpredicted_output_breaks_path(self):
        tracker = make_tracker()
        tracker.begin_node()
        tracker.end_node(True, InKind.II)       # uid 0 generate
        tracker.begin_node()
        tracker.feed_propagate_arc(0)
        tracker.end_node(False, InKind.PP)      # uid 1: terminate
        tracker.begin_node()
        # uid 1's value is not predictable: no propagate arc possible.
        tracker.end_node(False, InKind.NN)
        tracker.finalize()
        # Only the arc into uid 1 propagated.
        assert tracker.stats.propagate_elements == 1

    def test_gen_cap_truncates(self):
        tracker = PathTracker(track_trees=True, gen_cap=2)
        for __ in range(4):
            tracker.begin_node()
            tracker.end_node(True, InKind.II)
        tracker.begin_node()
        for uid in range(4):
            tracker.feed_propagate_arc(uid)
        tracker.end_node(True, InKind.PP)
        tracker.finalize()
        assert tracker.trees.truncated >= 1


class TestMaskOnlyMode:
    def test_no_tree_stats(self):
        tracker = PathTracker(track_trees=False)
        tracker.begin_node()
        tracker.end_node(True, InKind.II)
        tracker.begin_node()
        tracker.feed_propagate_arc(0)
        tracker.end_node(True, InKind.PP)
        tracker.finalize()
        assert tracker.trees is None
        assert tracker.stats.propagate_elements == 2
        assert tracker.stats.class_counts[GenClass.I] == 2
