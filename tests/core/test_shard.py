"""Adversarial segment boundaries for the segment-parallel kernel.

The merge contract is byte-identity with the serial columnar engine no
matter where a cut lands: inside a loop body, between a producer and
its consumer arc, after every single record, or past the end of the
trace.  These tests place checkpoints at exactly those spots and
compare serialized results; the file-path planner's rejection cases
(stale index, unsupported config, budget below the first checkpoint)
are pinned as :class:`ShardError`.
"""

from __future__ import annotations

import json

import pytest

from repro.core import AnalysisConfig, analyze_trace
from repro.core.export import result_to_dict
from repro.core.kernel import TraceColumns
from repro.core.shard import (
    ShardError,
    analyze_columns_segmented,
    build_index,
    plan_bounds,
    prepare_file_segments,
    select_segments,
)
from repro.workloads import get_workload

BUDGET = 1_200


def _trace_of(name: str):
    machine = get_workload(name).machine()
    records = list(machine.trace())
    return records, len(machine.program.instructions)


def _dump(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=False)


def _family_of(config):
    return (config.predictors,
            (config.branch_predictor, config.gshare_bits))


@pytest.fixture(scope="module")
def com():
    records, n_static = _trace_of("com")
    columns = TraceColumns.from_records(records, n_static)
    return records, n_static, columns


def _serial(records, n_static, config):
    return _dump(analyze_trace(records, n_static, name="com",
                               config=config, engine="columnar"))


class TestAdversarialBoundaries:
    def test_single_record_segments(self, com):
        """Cut after *every* record: each boundary lands mid-loop and
        between every producer/consumer pair somewhere in the trace."""
        records, n_static, columns = com
        config = AnalysisConfig(max_instructions=120)
        segmented = analyze_columns_segmented(columns, config, "com",
                                              segments=120)
        assert _dump(segmented) == _serial(records, n_static, config)

    def test_segments_exceed_record_count(self, com):
        records, n_static, columns = com
        config = AnalysisConfig(max_instructions=50)
        segmented = analyze_columns_segmented(columns, config, "com",
                                              segments=500)
        assert _dump(segmented) == _serial(records, n_static, config)

    @pytest.mark.parametrize("cut", [1, 7, 64, 65, 66, 100, 501])
    def test_checkpoint_at_arbitrary_record(self, com, cut):
        """A single explicit cut swept across the trace: loop entries,
        loop bodies, and back-edge records all get split."""
        records, n_static, columns = com
        config = AnalysisConfig(max_instructions=BUDGET)
        m = min(BUDGET, columns.n_records)
        specs, branch = _family_of(config)
        index = build_index(columns, [0, cut, m], specs=specs,
                            branch=branch)
        segmented = analyze_columns_segmented(columns, config, "com",
                                              segments=2, index=index)
        assert _dump(segmented) == _serial(records, n_static, config)

    def test_producer_consumer_arc_split(self, com):
        """Cuts between a value's producing record and the consuming
        arc: with contiguous 1-record bounds over a window, every
        def-use pair inside it is separated by some boundary."""
        records, n_static, columns = com
        config = AnalysisConfig(max_instructions=300)
        specs, branch = _family_of(config)
        bounds = [0] + list(range(200, 300)) + [300]
        index = build_index(columns, bounds, specs=specs, branch=branch)
        segmented = analyze_columns_segmented(columns, config, "com",
                                              segments=len(bounds) - 1,
                                              index=index)
        assert _dump(segmented) == _serial(records, n_static, config)

    def test_variant_configs_across_cuts(self, com):
        """Non-default banks (hybrid, local branch predictor) resumed
        mid-trace must fold their state deltas identically."""
        records, n_static, columns = com
        for config in (
            AnalysisConfig(predictors=("hybrid", "last"),
                           max_instructions=BUDGET),
            AnalysisConfig(branch_predictor="local", gshare_bits=10,
                           max_instructions=BUDGET),
            AnalysisConfig(trees_for=("last",), gen_cap=4,
                           max_instructions=BUDGET),
        ):
            segmented = analyze_columns_segmented(columns, config, "com",
                                                  segments=5)
            assert _dump(segmented) == _serial(records, n_static, config)


class TestPlanning:
    def test_plan_bounds_cover_and_order(self):
        bounds = plan_bounds(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert bounds == sorted(bounds)
        assert plan_bounds(3, 100) == [0, 1, 2, 3]
        assert plan_bounds(5, 1) == [0, 5]

    def test_select_degrades_to_serial_without_usable_cuts(self, com):
        __, __, columns = com
        config = AnalysisConfig()
        specs, branch = _family_of(config)
        m = columns.n_records
        index = build_index(columns, [0, m], specs=specs, branch=branch)
        # No interior boundary: one segment = run serial.
        assert len(select_segments(index, m, 4)) == 1


class TestFilePlannerRejections:
    @pytest.fixture()
    def stored(self, tmp_path, com):
        from repro.cpu.tracefile import save_trace

        records, n_static, columns = com
        path = tmp_path / "com.trace.gz"
        save_trace(records, path, n_static, complete=True,
                   workload="com")
        n = columns.n_records
        index = build_index(columns, plan_bounds(n, max(4, n // 300)))
        return path, index, columns

    def test_stale_index_raises(self, stored, com):
        from repro.core.shard import SegmentIndex

        path, index, columns = stored
        stale = SegmentIndex.from_bytes(index.to_bytes())
        stale.n_records = index.n_records + 1
        with pytest.raises(ShardError, match="stale"):
            prepare_file_segments(path, AnalysisConfig(), stale, 4)

    def test_unsupported_config_raises(self, stored):
        path, index, __ = stored
        config = AnalysisConfig(
            predictors=("last(bits=3,hysteresis=0)",))
        with pytest.raises(ShardError):
            prepare_file_segments(path, config, index, 4)

    def test_budget_below_first_checkpoint_raises(self, stored):
        path, index, __ = stored
        config = AnalysisConfig(max_instructions=2)
        with pytest.raises(ShardError, match="checkpoint"):
            prepare_file_segments(path, config, index, 4)

    def test_plan_merges_byte_identical(self, stored, com):
        """The planner's task args, run inline in order, merge to the
        serial result — the contract the runner's pool relies on."""
        from repro.core.shard import _segment_task

        records, n_static, __ = com
        path, index, __c = stored
        config = AnalysisConfig(max_instructions=BUDGET)
        task_args, merge = prepare_file_segments(path, config, index, 4,
                                                 name="com")
        assert len(task_args) > 1
        for args in task_args:
            merge.add(_segment_task(*args))
        assert _dump(merge.finalize()) == _serial(records, n_static,
                                                  config)
