"""Cross-validate the streaming analyzer against the explicit DPG.

Two independent implementations of the model must agree: the explicit
networkx graph built by :func:`repro.core.build_dpg` and the streaming
:class:`repro.core.Analyzer`, fed the same trace with the same
predictor configuration.
"""

from collections import Counter

import pytest

from repro.asm import assemble
from repro.core import (
    AnalysisConfig,
    Behavior,
    analyze_machine,
    behavior_counts,
    build_dpg,
)
from repro.core.events import ARC_BEHAVIOR, UseClass
from repro.cpu import Machine
from repro.minic import compile_program

PROGRAMS = {
    "counter": """
__start:
        li   $s0, 0
loop:   addiu $s0, $s0, 1
        andi $t0, $s0, 7
        slti $t1, $s0, 40
        bne  $t1, $zero, loop
        halt
""",
    "memory": """
        .data
buf:    .space 64
        .text
__start:
        li   $s0, 0
        la   $s1, buf
fill:   sll  $t0, $s0, 2
        addu $t0, $t0, $s1
        mul  $t1, $s0, $s0
        sw   $t1, 0($t0)
        addiu $s0, $s0, 1
        slti $t2, $s0, 16
        bne  $t2, $zero, fill
        li   $s0, 0
sum:    sll  $t0, $s0, 2
        addu $t0, $t0, $s1
        lw   $t1, 0($t0)
        addu $s2, $s2, $t1
        addiu $s0, $s0, 1
        slti $t2, $s0, 16
        bne  $t2, $zero, sum
        halt
""",
}

MINIC = """
int hist[16];
int main() {
    int i;
    for (i = 0; i < 200; i++) {
        hist[(i * 7) & 15] += 1;
    }
    int best = 0;
    for (i = 1; i < 16; i++) {
        if (hist[i] > hist[best]) best = i;
    }
    print_int(best);
    return 0;
}
"""


def cross_validate(program, kind):
    machine_a = Machine(program)
    graph = build_dpg(machine_a.trace(), predictor=kind)
    graph_nodes, graph_arcs = behavior_counts(graph)

    machine_b = Machine(program)
    config = AnalysisConfig(predictors=(kind,), trees_for=())
    result = analyze_machine(machine_b, "x", config)
    pred = result.predictors[kind]

    stream_nodes = pred.nodes.behavior_counts()
    stream_arcs = pred.arcs.behavior_counts()
    for behavior in Behavior:
        assert graph_nodes.get(behavior, 0) == stream_nodes.get(behavior, 0), (
            f"node {behavior.name} mismatch"
        )
        if behavior is not Behavior.OTHER:
            assert graph_arcs.get(behavior, 0) == stream_arcs.get(
                behavior, 0
            ), f"arc {behavior.name} mismatch"
    return graph, result


@pytest.mark.parametrize("kind", ["last", "stride", "context"])
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_asm_programs_agree(kind, name):
    cross_validate(assemble(PROGRAMS[name]), kind)


@pytest.mark.parametrize("kind", ["last", "stride", "context"])
def test_minic_program_agrees(kind):
    cross_validate(compile_program(MINIC), kind)


def test_use_classes_agree():
    """Arc use-class totals from the graph match the streaming table."""
    program = assemble(PROGRAMS["memory"])
    machine_a = Machine(program)
    graph = build_dpg(machine_a.trace(), predictor="stride")
    graph_uses = Counter(
        data["use"] for __, __, data in graph.edges(data=True)
    )

    machine_b = Machine(program)
    config = AnalysisConfig(predictors=("stride",), trees_for=())
    result = analyze_machine(machine_b, "x", config)
    arcs = result.predictors["stride"].arcs
    for use in UseClass:
        stream_total = sum(arcs.count(use, xy) for xy in range(4))
        assert graph_uses.get(use, 0) == stream_total, use.name


def test_graph_arc_labels_consistent():
    """Every <p,*> arc's producer has a predicted output in the graph."""
    program = assemble(PROGRAMS["counter"])
    graph = build_dpg(Machine(program).trace(), predictor="stride")
    for producer, __, data in graph.edges(data=True):
        if data["x"]:
            assert graph.nodes[producer]["out_predicted"] is True


def test_d_nodes_have_no_in_arcs():
    program = assemble(PROGRAMS["memory"])
    graph = build_dpg(Machine(program).trace(), predictor="last")
    for node, data in graph.nodes(data=True):
        if data.get("kind") == "data":
            assert graph.in_degree(node) == 0
            for __, __, edge in graph.out_edges(node, data=True):
                assert edge["x"] is False  # D arcs are always <n,*>
