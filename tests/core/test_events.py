"""Tests for the node/arc label taxonomy."""

from repro.core.events import (
    ARC_BEHAVIOR,
    ARC_NN,
    ARC_NP,
    ARC_PN,
    ARC_PP,
    Behavior,
    GenClass,
    InKind,
    arc_code,
    gen_mask_name,
    in_kind,
    node_behavior,
    node_class_name,
)


class TestArcLabels:
    def test_arc_code_encoding(self):
        assert arc_code(False, False) == ARC_NN
        assert arc_code(False, True) == ARC_NP
        assert arc_code(True, False) == ARC_PN
        assert arc_code(True, True) == ARC_PP

    def test_arc_behaviors_match_paper_fig2(self):
        assert ARC_BEHAVIOR[ARC_NP] is Behavior.GENERATE
        assert ARC_BEHAVIOR[ARC_PP] is Behavior.PROPAGATE
        assert ARC_BEHAVIOR[ARC_PN] is Behavior.TERMINATE
        assert ARC_BEHAVIOR[ARC_NN] is Behavior.UNPRED


class TestNodeKinds:
    def test_pure_kinds(self):
        assert in_kind(True, False, False) is InKind.PP
        assert in_kind(False, True, False) is InKind.NN
        assert in_kind(False, False, True) is InKind.II

    def test_mixed_kinds(self):
        assert in_kind(True, False, True) is InKind.PI
        assert in_kind(True, True, False) is InKind.PN
        assert in_kind(False, True, True) is InKind.IN

    def test_three_kind_folds_to_pn(self):
        assert in_kind(True, True, True) is InKind.PN

    def test_no_inputs_folds_to_ii(self):
        assert in_kind(False, False, False) is InKind.II

    def test_class_names(self):
        assert node_class_name(InKind.II, True) == "i,i->p"
        assert node_class_name(InKind.PN, False) == "p,n->n"
        assert node_class_name(InKind.PI, True) == "p,i->p"


class TestNodeBehavior:
    def test_generation_requires_no_predicted_inputs(self):
        assert node_behavior(InKind.II, True) is Behavior.GENERATE
        assert node_behavior(InKind.NN, True) is Behavior.GENERATE
        assert node_behavior(InKind.IN, True) is Behavior.GENERATE

    def test_propagation_requires_predicted_input_and_output(self):
        for kind in (InKind.PP, InKind.PI, InKind.PN):
            assert node_behavior(kind, True) is Behavior.PROPAGATE

    def test_termination(self):
        for kind in (InKind.PP, InKind.PI, InKind.PN):
            assert node_behavior(kind, False) is Behavior.TERMINATE

    def test_unpredictability_propagation(self):
        for kind in (InKind.NN, InKind.IN, InKind.II):
            assert node_behavior(kind, False) is Behavior.UNPRED


class TestGenMaskNames:
    def test_single_classes(self):
        assert gen_mask_name(1 << GenClass.C) == "C"
        assert gen_mask_name(1 << GenClass.I) == "I"

    def test_combination_order(self):
        mask = (1 << GenClass.C) | (1 << GenClass.I)
        assert gen_mask_name(mask) == "CI"

    def test_empty(self):
        assert gen_mask_name(0) == "-"

    def test_all(self):
        assert gen_mask_name(0b111111) == "CDWINM"
