"""Tests for contiguous predictable-sequence tracking."""

from repro.core.sequences import SequenceTracker


def runs_of(flags):
    tracker = SequenceTracker()
    for flag in flags:
        tracker.on_node(flag)
    tracker.finalize()
    return dict(tracker.stats.lengths)


class TestSequenceTracker:
    def test_single_run(self):
        assert runs_of([True, True, True]) == {3: 1}

    def test_run_broken_by_misprediction(self):
        assert runs_of([True, True, False, True]) == {2: 1, 1: 1}

    def test_no_runs(self):
        assert runs_of([False, False]) == {}

    def test_empty_trace(self):
        assert runs_of([]) == {}

    def test_multiple_equal_runs(self):
        flags = [True, False, True, False, True]
        assert runs_of(flags) == {1: 3}

    def test_trailing_run_closed_by_finalize(self):
        tracker = SequenceTracker()
        for flag in [False, True, True]:
            tracker.on_node(flag)
        assert dict(tracker.stats.lengths) == {}
        tracker.finalize()
        assert dict(tracker.stats.lengths) == {2: 1}

    def test_instruction_count(self):
        tracker = SequenceTracker()
        for flag in [True] * 5 + [False] + [True] * 3:
            tracker.on_node(flag)
        tracker.finalize()
        assert tracker.stats.instructions_in_runs() == 8
