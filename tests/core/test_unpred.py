"""Tests for the unpredictability and critical-point analyses."""

import pytest

from repro.asm import assemble
from repro.core import AnalysisConfig, analyze_machine
from repro.core.unpred import CriticalPoints, UnpredTracker
from repro.cpu import Machine


class TestUnpredTracker:
    def test_runs_counted(self):
        tracker = UnpredTracker()
        for flag in [True, True, False, True]:
            tracker.on_node(flag)
        tracker.finalize()
        assert dict(tracker.stats.lengths) == {2: 1, 1: 1}

    def test_no_flags_no_runs(self):
        tracker = UnpredTracker()
        for __ in range(5):
            tracker.on_node(False)
        tracker.finalize()
        assert not tracker.stats.lengths


class TestCriticalPoints:
    def test_record_and_rank(self):
        critical = CriticalPoints(n_static=5)
        for __ in range(3):
            critical.record(2, terminated=True)
        critical.record(4, terminated=False)
        sites = critical.top_sites([10] * 5, count=3)
        assert sites[0].pc == 2
        assert sites[0].terminations == 3
        assert sites[0].output_misses == 3
        # pc 4 missed but never terminated; by terminations it ranks 0.
        assert all(site.terminations > 0 for site in sites)

    def test_rank_by_output_misses(self):
        critical = CriticalPoints(n_static=5)
        critical.record(4, terminated=False)
        sites = critical.top_sites([1] * 5, count=1, by="output_misses")
        assert sites[0].pc == 4

    def test_bad_ranking_rejected(self):
        with pytest.raises(ValueError):
            CriticalPoints(n_static=2).top_sites([1, 1], by="vibes")

    def test_miss_rate(self):
        critical = CriticalPoints(n_static=2)
        critical.record(0, terminated=True)
        site = critical.top_sites([4, 1], count=1)[0]
        assert site.miss_rate == 0.25

    def test_concentration(self):
        critical = CriticalPoints(n_static=10)
        for __ in range(9):
            critical.record(0, terminated=True)
        critical.record(1, terminated=True)
        assert critical.concentration(top=1) == 0.9
        assert CriticalPoints(n_static=3).concentration() == 0.0


class TestIntegration:
    SOURCE = """
        .data
buf:    .space 64
        .text
__start:
        li   $s0, 0
        la   $s1, buf
loop:   andi $t0, $s0, 15
        mul  $t1, $t0, $t0
        xor  $t1, $t1, $s0
        sll  $t2, $t0, 2
        addu $t2, $t2, $s1
        sw   $t1, 0($t2)
        lw   $t3, 0($t2)
        addiu $s0, $s0, 1
        slti $t4, $s0, 200
        bne  $t4, $zero, loop
        halt
"""

    @pytest.fixture(scope="class")
    def result(self):
        machine = Machine(assemble(self.SOURCE))
        return analyze_machine(machine, "unpred")

    def test_unpred_runs_present(self, result):
        for pred in result.predictors.values():
            assert pred.unpred is not None
            # Predictable and unpredictable runs cannot overlap.
            assert (
                pred.unpred.instructions_in_runs()
                + pred.sequences.instructions_in_runs()
                <= result.nodes
            )

    def test_critical_totals_match_terminations(self, result):
        from repro.core import Behavior

        for pred in result.predictors.values():
            terminations = pred.nodes.behavior_counts()[Behavior.TERMINATE]
            assert pred.critical.total_terminations() == terminations

    def test_top_sites_are_real_instructions(self, result):
        pred = result.predictors["stride"]
        sites = pred.critical.top_sites(
            [1] * result.static_instructions, count=5
        )
        for site in sites:
            assert 0 <= site.pc < result.static_instructions

    def test_trackers_can_be_disabled(self):
        config = AnalysisConfig(track_unpred=False, track_critical=False)
        machine = Machine(assemble(self.SOURCE))
        result = analyze_machine(machine, "off", config)
        pred = result.predictors["stride"]
        assert pred.unpred is None and pred.critical is None
