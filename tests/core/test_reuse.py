"""Tests for the instruction-reuse analysis."""

import pytest

from repro.asm import assemble
from repro.core import AnalysisConfig, analyze_machine
from repro.core.reuse import ReuseTracker
from repro.cpu import Machine
from repro.cpu.trace import DynInst, Source
from repro.isa.opcodes import Category


def alu(uid, pc, values, out):
    return DynInst(
        uid=uid, pc=pc, op="addu", category=Category.ALU, has_imm=False,
        srcs=tuple(Source(v, None, None, False, 8) for v in values),
        out=out,
    )


class TestReuseTracker:
    def test_first_instance_misses(self):
        tracker = ReuseTracker()
        assert tracker.on_node(alu(0, 5, (1, 2), 3), False) is False
        assert tracker.stats.eligible == 1
        assert tracker.stats.hits == 0

    def test_identical_inputs_hit(self):
        tracker = ReuseTracker()
        tracker.on_node(alu(0, 5, (1, 2), 3), False)
        assert tracker.on_node(alu(1, 5, (1, 2), 3), False) is True
        assert tracker.stats.hits == 1

    def test_different_pc_does_not_hit(self):
        tracker = ReuseTracker()
        tracker.on_node(alu(0, 5, (1, 2), 3), False)
        assert tracker.on_node(alu(1, 6, (1, 2), 3), False) is False

    def test_capacity_eviction_fifo_lru(self):
        tracker = ReuseTracker(ways=2)
        tracker.on_node(alu(0, 5, (1,), 1), False)
        tracker.on_node(alu(1, 5, (2,), 2), False)
        tracker.on_node(alu(2, 5, (3,), 3), False)   # evicts (1,)
        assert tracker.on_node(alu(3, 5, (1,), 1), False) is False
        assert tracker.on_node(alu(4, 5, (3,), 3), False) is True

    def test_hit_refreshes_lru_position(self):
        tracker = ReuseTracker(ways=2)
        tracker.on_node(alu(0, 5, (1,), 1), False)
        tracker.on_node(alu(1, 5, (2,), 2), False)
        tracker.on_node(alu(2, 5, (1,), 1), False)   # refresh (1,)
        tracker.on_node(alu(3, 5, (3,), 3), False)   # evicts (2,)
        assert tracker.on_node(alu(4, 5, (1,), 1), False) is True
        assert tracker.on_node(alu(5, 5, (2,), 2), False) is False

    def test_non_alu_ignored(self):
        tracker = ReuseTracker()
        load = DynInst(
            uid=0, pc=5, op="lw", category=Category.LOAD, has_imm=True,
            srcs=(Source(7, None, None, True, 0x1000),), out=7,
            passthrough=0,
        )
        assert tracker.on_node(load, True) is False
        assert tracker.stats.eligible == 0

    def test_prediction_overlap_accounting(self):
        tracker = ReuseTracker()
        tracker.on_node(alu(0, 5, (1, 2), 3), True)   # miss, predicted
        tracker.on_node(alu(1, 5, (1, 2), 3), True)   # hit, predicted
        tracker.on_node(alu(2, 5, (1, 2), 3), False)  # hit, unpredicted
        assert tracker.stats.predicted_only == 1
        assert tracker.stats.hits_predicted == 1
        assert tracker.stats.hits == 2

    def test_bad_ways_rejected(self):
        with pytest.raises(ValueError):
            ReuseTracker(ways=0)

    def test_reuse_rate(self):
        tracker = ReuseTracker()
        tracker.on_node(alu(0, 5, (1,), 1), False)
        tracker.on_node(alu(1, 5, (1,), 1), False)
        assert tracker.stats.reuse_rate() == 0.5


class TestAnalyzerIntegration:
    SOURCE = """
__start:
        li   $s0, 0
loop:   andi $t0, $s0, 3
        sll  $t1, $t0, 2
        addu $t2, $t1, $t0
        addiu $s0, $s0, 1
        slti $t3, $s0, 100
        bne  $t3, $zero, loop
        halt
"""

    def test_reuse_enabled(self):
        config = AnalysisConfig(track_reuse=True)
        machine = Machine(assemble(self.SOURCE))
        result = analyze_machine(machine, "reuse", config)
        stats = result.reuse
        assert stats is not None
        # The masked counter makes sll/addu inputs repeat with period 4
        # (reusable), while the counter-fed andi/addiu/slti inputs are
        # all distinct (never reusable): rate lands near 192/501.
        assert 0.3 < stats.reuse_rate() < 0.5
        assert stats.hits <= stats.eligible

    def test_reuse_disabled_by_default(self):
        machine = Machine(assemble(self.SOURCE))
        result = analyze_machine(machine, "noreuse")
        assert result.reuse is None

    def test_reuse_prediction_overlap_bounded(self):
        config = AnalysisConfig(track_reuse=True)
        machine = Machine(assemble(self.SOURCE))
        result = analyze_machine(machine, "reuse", config)
        stats = result.reuse
        assert stats.hits_predicted <= stats.hits
