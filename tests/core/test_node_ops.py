"""Tests for per-opcode node-class attribution, verifying the paper's
Section 4.2–4.4 claims about which instruction types populate which
classes."""

import pytest

from repro.core import AnalysisConfig, InKind, analyze_machine
from repro.workloads import get_workload

#: The instruction families the paper names in §4.2 for n,n->p and
#: i,n->p generation: "branch, compare, logical, and shift".
FILTERING_OPS = {
    "slt", "sltu", "slti", "sltiu",           # compares
    "and", "andi", "or", "ori", "xor", "xori", "nor",  # logical
    "sll", "srl", "sra", "sllv", "srlv", "srav",       # shifts
    "beq", "bne", "blez", "bgtz", "bltz", "bgez",      # branches
}

MEMORY_OPS = {"lw", "lb", "lbu", "lh", "lhu", "sw", "sb", "sh",
              "l.d", "s.d"}


@pytest.fixture(scope="module")
def results():
    config = AnalysisConfig(trees_for=(), max_instructions=60_000)
    out = {}
    for name in ("gcc", "com", "vor"):
        out[name] = analyze_machine(
            get_workload(name).machine(), name, config
        )
    return out


def pooled_ops(results, predictor, kind, out_p):
    from collections import Counter

    pooled: Counter = Counter()
    for result in results.values():
        pooled += result.predictors[predictor].ops_for_class(kind, out_p)
    return pooled


class TestPaperClaims:
    def test_mixed_input_generates_are_filtering_ops(self, results):
        """§4.2: 70-95% of n,n->p and i,n->p generation is due to
        branch, compare, logical and shift instructions.

        Holds essentially at 100% for last-value and stride.  The
        context predictor also generates at plain arithmetic (an FCM
        learns any repeating *output* sequence, e.g. hash-bucket
        values, regardless of the operation), so only the weaker
        "filtering ops are well represented" form is asserted there.
        """
        for predictor in ("last", "stride"):
            pooled = pooled_ops(results, predictor, InKind.IN, True)
            pooled += pooled_ops(results, predictor, InKind.NN, True)
            total = sum(pooled.values())
            assert total > 100
            filtering = sum(
                count for op, count in pooled.items()
                if op in FILTERING_OPS
            )
            assert filtering / total > 0.7, (predictor, pooled)
        pooled = pooled_ops(results, "context", InKind.IN, True)
        pooled += pooled_ops(results, "context", InKind.NN, True)
        filtering = sum(
            count for op, count in pooled.items() if op in FILTERING_OPS
        )
        assert filtering > 100

    def test_pn_propagation_is_mostly_memory(self, results):
        """§4.3: memory instructions are responsible for most of the
        p,n->p propagating nodes."""
        pooled = pooled_ops(results, "stride", InKind.PN, True)
        total = sum(pooled.values())
        memory = sum(
            count for op, count in pooled.items() if op in MEMORY_OPS
        )
        assert total > 0
        assert memory / total > 0.5, pooled

    def test_pn_termination_dominated_by_memory_and_adds(self, results):
        """§4.4: p,n->n termination is primarily memory instructions
        (predictable address, unpredictable data), remainder mostly
        integer adds."""
        pooled = pooled_ops(results, "stride", InKind.PN, False)
        total = sum(pooled.values())
        covered = sum(
            count for op, count in pooled.items()
            if op in MEMORY_OPS or op in ("add", "addu", "addiu", "subu")
        )
        assert total > 0
        assert covered / total > 0.5, pooled

    def test_context_pp_termination_hits_filtering_ops(self, results):
        """§4.4: context's p,p->n / p,i->n cases often involve compare,
        logical, shift and branch instructions (the limited-history
        mechanism)."""
        pooled = pooled_ops(results, "context", InKind.PI, False)
        pooled += pooled_ops(results, "context", InKind.PP, False)
        total = sum(pooled.values())
        assert total > 0
        filtering = sum(
            count for op, count in pooled.items()
            if op in FILTERING_OPS or op in MEMORY_OPS
        )
        assert filtering / total > 0.4, pooled


class TestMechanics:
    def test_ops_sum_matches_class_counts(self, results):
        result = results["gcc"]
        for pred in result.predictors.values():
            for kind in InKind:
                for out_p in (True, False):
                    ops = pred.ops_for_class(kind, out_p)
                    assert sum(ops.values()) == pred.nodes.count(
                        kind, out_p
                    )

    def test_tracking_can_be_disabled(self):
        config = AnalysisConfig(track_ops=False, max_instructions=2_000)
        result = analyze_machine(
            get_workload("com").machine(), "x", config
        )
        pred = result.predictors["stride"]
        assert pred.node_ops is None
        assert pred.ops_for_class(InKind.PP, True) == {}
