"""Tests for DPG export (DOT and flat records)."""

from itertools import islice

import pytest

from repro.asm import assemble
from repro.core import build_dpg
from repro.core.export import to_dot, to_records
from repro.cpu import Machine

SOURCE = """
        .data
v:      .word 3
        .text
__start:
        li   $s0, 0
loop:   lw   $t0, v
        addu $s0, $s0, $t0
        slti $t1, $s0, 30
        bne  $t1, $zero, loop
        halt
"""


@pytest.fixture(scope="module")
def graph():
    machine = Machine(assemble(SOURCE))
    return build_dpg(islice(machine.trace(), 60), predictor="stride")


class TestDot:
    def test_valid_structure(self, graph):
        dot = to_dot(graph, title="demo")
        assert dot.startswith("digraph dpg {")
        assert dot.rstrip().endswith("}")
        assert 'label="demo"' in dot

    def test_every_node_and_edge_rendered(self, graph):
        import re

        dot = to_dot(graph)
        node_lines = re.findall(r"^  (?:n\d+|D_\w+) \[label=", dot,
                                flags=re.M)
        edge_lines = re.findall(r"^  (?:n\d+|D_\w+) -> ", dot, flags=re.M)
        assert len(node_lines) == graph.number_of_nodes()
        assert len(edge_lines) == graph.number_of_edges()

    def test_d_nodes_rendered_specially(self, graph):
        dot = to_dot(graph)
        assert "D@0x" in dot
        assert "khaki" in dot

    def test_arc_labels_present(self, graph):
        dot = to_dot(graph)
        assert "<p,p>" in dot or "<n,p>" in dot


class TestRecords:
    def test_counts_match(self, graph):
        nodes, edges = to_records(graph)
        assert len(nodes) == graph.number_of_nodes()
        assert len(edges) == graph.number_of_edges()

    def test_json_serialisable(self, graph):
        import json

        nodes, edges = to_records(graph)
        text = json.dumps({"nodes": nodes, "edges": edges})
        assert "instruction" in text

    def test_instruction_record_fields(self, graph):
        nodes, __ = to_records(graph)
        instr = next(n for n in nodes if n["type"] == "instruction")
        assert {"uid", "pc", "op", "behavior", "class"} <= set(instr)

    def test_edge_use_classes_exported(self, graph):
        __, edges = to_records(graph)
        uses = {edge["use"] for edge in edges}
        assert "SINGLE" in uses or "REPEAT" in uses

    def test_data_record(self, graph):
        nodes, __ = to_records(graph)
        data_nodes = [n for n in nodes if n["type"] == "data"]
        assert data_nodes and all("key" in n for n in data_nodes)
