"""Tests for the branch study tracker."""

from repro.core.branches import FIG13_ORDER, BranchTracker
from repro.core.events import InKind


class TestBranchTracker:
    def test_counts(self):
        tracker = BranchTracker()
        tracker.on_branch(InKind.PI, True)
        tracker.on_branch(InKind.PI, False)
        tracker.on_branch(InKind.PP, False)
        stats = tracker.stats
        assert stats.total() == 3
        assert stats.correct() == 1
        assert stats.count(InKind.PI, False) == 1

    def test_avoidable_mispredictions(self):
        tracker = BranchTracker()
        tracker.on_branch(InKind.PP, False)
        tracker.on_branch(InKind.PI, False)
        tracker.on_branch(InKind.NN, False)
        assert tracker.mispredicted_with_predictable_inputs() == 2

    def test_fig13_order_complete(self):
        assert len(FIG13_ORDER) == 12
        assert len(set(FIG13_ORDER)) == 12
        predicted_half = FIG13_ORDER[:6]
        assert all(flag for __, flag in predicted_half)
