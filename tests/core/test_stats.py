"""Unit tests for the result containers."""

from repro.core.events import Behavior, InKind, UseClass
from repro.core.stats import (
    AnalysisResult,
    ArcStats,
    BranchStats,
    NodeStats,
    SequenceStats,
    TreeStats,
)


class TestNodeStats:
    def test_add_and_count(self):
        stats = NodeStats()
        stats.add(InKind.II, True)
        stats.add(InKind.II, True)
        stats.add(InKind.PN, False)
        assert stats.count(InKind.II, True) == 2
        assert stats.count(InKind.PN, False) == 1
        assert stats.classified() == 3

    def test_no_output_in_total(self):
        stats = NodeStats()
        stats.add(InKind.PP, True)
        stats.no_output = 4
        assert stats.total() == 5

    def test_behavior_counts(self):
        stats = NodeStats()
        stats.add(InKind.II, True)   # generate
        stats.add(InKind.PP, True)   # propagate
        stats.add(InKind.PI, False)  # terminate
        stats.add(InKind.NN, False)  # unpred
        stats.no_output = 2
        behaviors = stats.behavior_counts()
        assert behaviors[Behavior.GENERATE] == 1
        assert behaviors[Behavior.PROPAGATE] == 1
        assert behaviors[Behavior.TERMINATE] == 1
        assert behaviors[Behavior.UNPRED] == 1
        assert behaviors[Behavior.OTHER] == 2

    def test_by_class_name(self):
        stats = NodeStats()
        stats.add(InKind.IN, True)
        names = stats.by_class_name()
        assert names["i,n->p"] == 1
        assert names["p,p->n"] == 0
        assert len(names) == 12


class TestArcStats:
    def test_grid(self):
        stats = ArcStats()
        stats.add(UseClass.SINGLE, 3, count=2)
        stats.add(UseClass.REPEAT, 1)
        assert stats.count(UseClass.SINGLE, 3) == 2
        assert stats.total() == 3
        assert stats.xy_total(3) == 2
        assert stats.xy_total(1) == 1

    def test_by_class_name(self):
        stats = ArcStats()
        stats.add(UseClass.WRITE_ONCE, 1)
        names = stats.by_class_name()
        assert names["<wl:n,p>"] == 1
        assert len(names) == 16

    def test_behavior_counts(self):
        stats = ArcStats()
        stats.add(UseClass.SINGLE, 3)  # pp
        stats.add(UseClass.DATA, 1)    # np
        behaviors = stats.behavior_counts()
        assert behaviors[Behavior.PROPAGATE] == 1
        assert behaviors[Behavior.GENERATE] == 1


class TestSequenceStats:
    def test_instruction_count(self):
        stats = SequenceStats()
        stats.add_run(3)
        stats.add_run(3)
        stats.add_run(10)
        assert stats.instructions_in_runs() == 16
        assert stats.lengths[3] == 2

    def test_zero_run_ignored(self):
        stats = SequenceStats()
        stats.add_run(0)
        assert not stats.lengths


class TestBranchStats:
    def test_accuracy(self):
        stats = BranchStats()
        stats.add(InKind.PP, True)
        stats.add(InKind.PP, True)
        stats.add(InKind.PI, False)
        stats.add(InKind.NN, True)
        assert stats.total() == 4
        assert stats.correct() == 3
        assert stats.accuracy() == 0.75

    def test_empty_accuracy(self):
        assert BranchStats().accuracy() == 0.0


class TestTreeStats:
    def test_totals(self):
        stats = TreeStats()
        stats.depth_hist[2] = 3
        stats.agg_hist[2] = 12
        stats.influence_hist[1] = 9
        assert stats.total_generates() == 3
        assert stats.aggregate_propagation() == 12
        assert stats.total_propagates() == 9


class TestAnalysisResult:
    def test_elements_and_ratio(self):
        result = AnalysisResult(name="x", nodes=100, arcs=150)
        assert result.elements == 250
        assert result.edge_node_ratio() == 1.5

    def test_zero_nodes(self):
        assert AnalysisResult(name="x").edge_node_ratio() == 0.0
