"""Tests for deferred arc use-group resolution."""

from repro.core.arcs import ArcGroupTable
from repro.core.events import ARC_NP, ARC_PP, UseClass
from repro.core.stats import ArcStats


def flush(table, static_counts, n_predictors=1):
    stats = [ArcStats() for __ in range(n_predictors)]
    table.flush(static_counts, stats)
    return stats


class TestArcGroupTable:
    def test_single_use(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        table.add(table.key(0, 2, 5), ARC_PP)
        (stats,) = flush(table, [1] * 10)
        assert stats.count(UseClass.SINGLE, ARC_PP) == 1
        assert stats.total() == 1

    def test_repeated_use(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        key = table.key(0, 2, 5)
        for __ in range(3):
            table.add(key, ARC_NP)
        counts = [0] * 10
        counts[2] = 5  # producer executed 5 times: plain repeat
        (stats,) = flush(table, counts)
        assert stats.count(UseClass.REPEAT, ARC_NP) == 3

    def test_write_once(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        key = table.key(0, 2, 5)
        table.add(key, ARC_NP)
        table.add(key, ARC_NP)
        counts = [0] * 10
        counts[2] = 1  # producer executed exactly once in the program
        (stats,) = flush(table, counts)
        assert stats.count(UseClass.WRITE_ONCE, ARC_NP) == 2

    def test_data_node_repeated(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        key = table.d_key(0x10000000, 5)
        table.add(key, ARC_NP)
        table.add(key, ARC_NP)
        (stats,) = flush(table, [9] * 10)
        assert stats.count(UseClass.DATA, ARC_NP) == 2

    def test_data_node_single_use_is_single(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        table.add(table.d_key(0x10000000, 5), ARC_NP)
        (stats,) = flush(table, [9] * 10)
        assert stats.count(UseClass.SINGLE, ARC_NP) == 1

    def test_different_consumers_are_different_groups(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        table.add(table.key(0, 2, 5), ARC_PP)
        table.add(table.key(0, 2, 6), ARC_PP)
        (stats,) = flush(table, [5] * 10)
        assert stats.count(UseClass.SINGLE, ARC_PP) == 2

    def test_mixed_labels_within_group(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        key = table.key(0, 2, 5)
        table.add(key, ARC_NP)
        table.add(key, ARC_PP)
        table.add(key, ARC_PP)
        (stats,) = flush(table, [5] * 10)
        assert stats.count(UseClass.REPEAT, ARC_NP) == 1
        assert stats.count(UseClass.REPEAT, ARC_PP) == 2

    def test_multi_predictor_combo_decoding(self):
        table = ArcGroupTable(n_static=10, n_predictors=3)
        combo = ARC_NP | (ARC_PP << 2) | (ARC_PP << 4)
        table.add(table.key(0, 2, 5), combo)
        stats = flush(table, [5] * 10, n_predictors=3)
        assert stats[0].count(UseClass.SINGLE, ARC_NP) == 1
        assert stats[1].count(UseClass.SINGLE, ARC_PP) == 1
        assert stats[2].count(UseClass.SINGLE, ARC_PP) == 1

    def test_group_count(self):
        table = ArcGroupTable(n_static=10, n_predictors=1)
        table.add(table.key(0, 1, 2), 0)
        table.add(table.key(0, 1, 2), 0)
        table.add(table.key(1, 1, 3), 0)
        assert table.groups() == 2

    def test_totals_conserved(self):
        table = ArcGroupTable(n_static=50, n_predictors=2)
        total = 0
        for producer in range(20):
            for consumer in range(producer % 4 + 1):
                table.add(table.key(producer, producer % 50, consumer), 0b0110)
                total += 1
        stats = flush(table, [3] * 50, n_predictors=2)
        assert stats[0].total() == total
        assert stats[1].total() == total
