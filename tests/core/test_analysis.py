"""Invariant tests for the streaming analyzer on real traces."""

import pytest

from repro.asm import assemble
from repro.core import AnalysisConfig, Behavior, analyze_machine
from repro.cpu import Machine
from repro.isa.opcodes import Category
from repro.minic import compile_program

LOOP_ASM = """
        .data
tab:    .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
__start:
        li   $s0, 0
        li   $s1, 0
        la   $s2, tab
loop:   sll  $t0, $s0, 2
        addu $t0, $t0, $s2
        lw   $t1, 0($t0)
        addu $s1, $s1, $t1
        addiu $s0, $s0, 1
        slti $t2, $s0, 8
        bne  $t2, $zero, loop
        halt
"""

MINIC_SRC = """
int table[64];

int mix(int a, int b) {
    return (a ^ (b << 3)) + (a >> 2);
}

int main() {
    int i;
    for (i = 0; i < 64; i++) {
        table[i] = mix(i, i * 7);
    }
    int sum = 0;
    for (i = 0; i < 64; i++) {
        if (table[i] & 1) sum += table[i];
        else sum -= i;
    }
    print_int(sum);
    return 0;
}
"""


def analyze_asm(source, **kwargs):
    machine = Machine(assemble(source), **kwargs)
    return analyze_machine(machine, "test")


@pytest.fixture(scope="module")
def loop_result():
    return analyze_asm(LOOP_ASM)


@pytest.fixture(scope="module")
def minic_result():
    machine = Machine(compile_program(MINIC_SRC))
    return analyze_machine(machine, "minic")


class TestConservation:
    def test_node_totals_match_trace(self, loop_result):
        for pred in loop_result.predictors.values():
            assert pred.nodes.total() == loop_result.nodes

    def test_arc_totals_conserved(self, loop_result):
        for pred in loop_result.predictors.values():
            assert pred.arcs.total() == loop_result.arcs

    def test_d_arcs_bounded(self, loop_result):
        assert 0 < loop_result.d_arcs <= loop_result.arcs

    def test_behavior_partition(self, loop_result):
        for pred in loop_result.predictors.values():
            counts = pred.nodes.behavior_counts()
            assert sum(counts.values()) == loop_result.nodes

    def test_minic_conservation(self, minic_result):
        for pred in minic_result.predictors.values():
            assert pred.nodes.total() == minic_result.nodes
            assert pred.arcs.total() == minic_result.arcs

    def test_sequences_bounded_by_nodes(self, minic_result):
        for pred in minic_result.predictors.values():
            assert pred.sequences.instructions_in_runs() <= minic_result.nodes


class TestModelRules:
    def test_loads_never_generate(self, minic_result):
        """Pass-through instructions (loads/stores/jr) can never be
        node-generates: their output flag equals an input flag."""
        # Re-analyse with a single predictor and check directly on the
        # explicit DPG, which records categories.
        from repro.core import build_dpg

        machine = Machine(compile_program(MINIC_SRC))
        graph = build_dpg(machine.trace(), predictor="stride")
        for __, data in graph.nodes(data=True):
            if data.get("category") in (
                Category.LOAD, Category.STORE, Category.JUMP_REG
            ):
                assert data["behavior"] is not Behavior.GENERATE

    def test_branches_classified(self, loop_result):
        for pred in loop_result.predictors.values():
            assert pred.branches.total() > 0

    def test_gshare_shared_across_predictors(self, loop_result):
        accuracies = {
            pred.branches.accuracy()
            for pred in loop_result.predictors.values()
        }
        assert len(accuracies) == 1  # same gshare outcome for all banks

    def test_d_nodes_counted(self, loop_result):
        # The 8 table words, the sentinel $ra... static data reads give
        # at least the 8 distinct D identities for the table.
        assert loop_result.d_nodes >= 8

    def test_paths_present_for_all(self, loop_result):
        for pred in loop_result.predictors.values():
            assert pred.paths is not None
            assert pred.paths.propagate_elements > 0

    def test_trees_only_for_context(self, loop_result):
        assert loop_result.predictors["context"].trees is not None
        assert loop_result.predictors["last"].trees is None

    def test_stride_beats_last_value_on_induction(self, loop_result):
        """The loop counter makes stride propagate far more."""
        stride = loop_result.predictors["stride"].nodes.behavior_counts()
        last = loop_result.predictors["last"].nodes.behavior_counts()
        assert stride[Behavior.PROPAGATE] > last[Behavior.PROPAGATE]


class TestConfig:
    def test_predictor_subset(self):
        config = AnalysisConfig(predictors=("stride",), trees_for=())
        machine = Machine(assemble(LOOP_ASM))
        result = analyze_machine(machine, "subset", config)
        assert set(result.predictors) == {"stride"}
        assert result.predictors["stride"].trees is None

    def test_max_instructions_truncates(self):
        config = AnalysisConfig(max_instructions=20)
        machine = Machine(assemble(LOOP_ASM))
        result = analyze_machine(machine, "trunc", config)
        assert result.nodes == 20

    def test_disable_optional_trackers(self):
        config = AnalysisConfig(
            track_paths=False, track_sequences=False, track_branches=False
        )
        machine = Machine(assemble(LOOP_ASM))
        result = analyze_machine(machine, "bare", config)
        pred = result.predictors["context"]
        assert pred.paths is None
        assert pred.sequences is None
        assert pred.branches is None

    def test_profile_counts_accepted(self):
        profiler = Machine(assemble(LOOP_ASM), tracing=False)
        profiler.run()
        machine = Machine(assemble(LOOP_ASM))
        result = analyze_machine(
            machine, "profiled", profile_counts=profiler.static_counts
        )
        assert result.nodes == profiler.uid


class TestDeterminism:
    def test_repeated_analysis_identical(self):
        first = analyze_asm(LOOP_ASM)
        second = analyze_asm(LOOP_ASM)
        assert first.nodes == second.nodes
        assert first.arcs == second.arcs
        for kind in first.predictors:
            a = first.predictors[kind]
            b = second.predictors[kind]
            assert a.nodes.by_class_name() == b.nodes.by_class_name()
            assert a.arcs.by_class_name() == b.arcs.by_class_name()
            assert dict(a.sequences.lengths) == dict(b.sequences.lengths)
