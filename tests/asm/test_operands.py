"""Unit tests for assembler operand parsing."""

import pytest

from repro.asm.operands import (
    is_label,
    is_register,
    parse_hilo,
    parse_int,
    parse_mem_operand,
    parse_register,
    parse_symbol_ref,
    split_operands,
    try_parse_int,
    unescape_char,
    unescape_string,
)
from repro.errors import AsmError


class TestSplitOperands:
    def test_basic(self):
        assert split_operands("$t0, $t1, 5") == ["$t0", "$t1", "5"]

    def test_empty(self):
        assert split_operands("") == []
        assert split_operands("   ") == []

    def test_whitespace_stripped(self):
        assert split_operands(" a ,  b ") == ["a", "b"]


class TestIntegers:
    def test_decimal_and_hex(self):
        assert try_parse_int("42") == 42
        assert try_parse_int("-7") == -7
        assert try_parse_int("0x10") == 16

    def test_char_literal(self):
        assert try_parse_int("'a'") == 97
        assert try_parse_int("'\\n'") == 10

    def test_not_an_int(self):
        assert try_parse_int("label") is None
        assert try_parse_int("") is None

    def test_parse_int_raises(self):
        with pytest.raises(AsmError, match="invalid integer"):
            parse_int("xyz")


class TestRegisters:
    def test_is_register(self):
        assert is_register("$t0")
        assert is_register("$f4")
        assert not is_register("t0")
        assert not is_register("$nope")

    def test_parse_register_error(self):
        with pytest.raises(AsmError):
            parse_register("$nope")


class TestSymbols:
    def test_is_label(self):
        assert is_label("main")
        assert is_label(".L1")
        assert is_label("_under")
        assert not is_label("$t0")
        assert not is_label("1abc")

    def test_symbol_ref_plain(self):
        assert parse_symbol_ref("table") == ("table", 0)

    def test_symbol_ref_with_offset(self):
        assert parse_symbol_ref("table+8") == ("table", 8)
        assert parse_symbol_ref("table-4") == ("table", -4)

    def test_symbol_ref_invalid(self):
        with pytest.raises(AsmError):
            parse_symbol_ref("1+2")

    def test_hilo(self):
        assert parse_hilo("%hi(sym)") == ("hi", "sym")
        assert parse_hilo("%lo(sym+4)") == ("lo", "sym+4")
        assert parse_hilo("sym") is None


class TestMemOperands:
    def test_displacement_forms(self):
        assert parse_mem_operand("8($sp)") == (8, 29)
        assert parse_mem_operand("($sp)") == (0, 29)
        assert parse_mem_operand("-4($fp)") == (-4, 30)

    def test_lo_relocation_kept(self):
        disp, base = parse_mem_operand("%lo(sym)($at)")
        assert disp == "%lo(sym)" and base == 1

    def test_bare_symbol_returns_none(self):
        assert parse_mem_operand("globalvar") is None

    def test_bad_register(self):
        with pytest.raises(AsmError):
            parse_mem_operand("4($nope)")


class TestStrings:
    def test_unescape_char(self):
        assert unescape_char("a") == "a"
        assert unescape_char("\\t") == "\t"
        assert unescape_char("\\\\") == "\\"

    def test_unescape_char_invalid(self):
        with pytest.raises(AsmError):
            unescape_char("ab")
        with pytest.raises(AsmError):
            unescape_char("\\q")

    def test_unescape_string(self):
        assert unescape_string("a\\nb\\0") == "a\nb\0"

    def test_dangling_escape(self):
        with pytest.raises(AsmError, match="dangling"):
            unescape_string("abc\\")
