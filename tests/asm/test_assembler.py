"""Tests for the two-pass assembler."""

import pytest

from repro.asm import AsmError, assemble
from repro.isa import Category, REG_RA
from repro.isa.layout import DATA_BASE


class TestBasicAssembly:
    def test_simple_instruction(self):
        program = assemble("addu $t0, $t1, $t2")
        assert len(program) == 1
        instr = program.instructions[0]
        assert instr.op == "addu"
        assert instr.dest == 8
        assert instr.src1 == 9
        assert instr.src2 == 10

    def test_immediate_instruction(self):
        program = assemble("addiu $t0, $t1, -5")
        instr = program.instructions[0]
        assert instr.imm == -5

    def test_comments_and_blank_lines(self):
        program = assemble(
            "# leading comment\n\naddu $t0, $t1, $t2  # trailing\n"
        )
        assert len(program) == 1

    def test_labels_resolve_to_indices(self):
        program = assemble(
            "start:  addiu $t0, $zero, 1\n"
            "        beq $t0, $zero, start\n"
        )
        assert program.labels["start"] == 0
        assert program.instructions[1].target == 0

    def test_forward_branch_target(self):
        program = assemble(
            "        beq $t0, $zero, done\n"
            "        addiu $t0, $t0, 1\n"
            "done:   halt\n"
        )
        assert program.instructions[0].target == 2

    def test_entry_defaults(self):
        program = assemble("main: halt")
        assert program.entry == 0
        program = assemble("nop\n__start: halt")
        assert program.entry == 1

    def test_memory_operand_forms(self):
        program = assemble(
            "lw $t0, 4($sp)\n"
            "lw $t1, ($sp)\n"
        )
        assert program.instructions[0].imm == 4
        assert program.instructions[1].imm == 0

    def test_store_operand_roles(self):
        program = assemble("sw $t0, 8($sp)")
        instr = program.instructions[0]
        assert instr.src1 == 29  # base ($sp)
        assert instr.src2 == 8   # data ($t0)
        assert instr.dest is None

    def test_jal_writes_ra(self):
        program = assemble("f: nop\nmain: jal f")
        instr = program.instructions[1]
        assert instr.dest == REG_RA
        assert instr.category is Category.CALL


class TestDataSegment:
    def test_word_layout(self):
        program = assemble(
            "        .data\n"
            "a:      .word 1, 2, 3\n"
            "b:      .word 4\n"
        )
        assert program.symbols["a"] == DATA_BASE
        assert program.symbols["b"] == DATA_BASE + 12
        values = [item.value for item in program.data]
        assert values == [1, 2, 3, 4]

    def test_byte_and_alignment(self):
        program = assemble(
            "        .data\n"
            "c:      .byte 1, 2, 3\n"
            "w:      .word 7\n"
        )
        assert program.symbols["c"] == DATA_BASE
        assert program.symbols["w"] == DATA_BASE + 4  # aligned past 3 bytes

    def test_double_alignment(self):
        program = assemble(
            "        .data\n"
            "pad:    .word 1\n"
            "d:      .double 2.5\n"
        )
        assert program.symbols["d"] % 8 == 0
        item = program.data[-1]
        assert item.is_float and item.value == 2.5

    def test_asciiz(self):
        program = assemble('.data\ns: .asciiz "hi"\n')
        values = [item.value for item in program.data]
        assert values == [ord("h"), ord("i"), 0]

    def test_space_advances_cursor(self):
        program = assemble(
            ".data\nbuf: .space 100\nnext: .word 1\n"
        )
        assert program.symbols["next"] >= program.symbols["buf"] + 100

    def test_word_with_symbol_value(self):
        program = assemble(
            ".data\ntarget: .word 42\nptr: .word target\n"
        )
        assert program.data[-1].value == program.symbols["target"]

    def test_escape_sequences_in_string(self):
        program = assemble('.data\ns: .asciiz "a\\n\\t"\n')
        values = [item.value for item in program.data]
        assert values == [ord("a"), 10, 9, 0]


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            assemble("frobnicate $t0")

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match="duplicate label"):
            assemble("x: nop\nx: nop")

    def test_undefined_branch_target(self):
        with pytest.raises(AsmError, match="undefined branch target"):
            assemble("beq $t0, $t1, nowhere")

    def test_undefined_symbol(self):
        with pytest.raises(AsmError, match="undefined symbol"):
            assemble("la $t0, missing")

    def test_bad_register(self):
        with pytest.raises(AsmError, match="invalid register"):
            assemble("addu $t0, $bogus, $t2")

    def test_shift_out_of_range(self):
        with pytest.raises(AsmError, match="shift amount"):
            assemble("sll $t0, $t1, 32")

    def test_immediate_out_of_range(self):
        with pytest.raises(AsmError, match="immediate out of range"):
            assemble("addiu $t0, $t1, 70000")

    def test_operand_count(self):
        with pytest.raises(AsmError, match="expects"):
            assemble("addu $t0, $t1")

    def test_fp_register_where_int_expected(self):
        with pytest.raises(AsmError, match="expected integer register"):
            assemble("addu $t0, $f1, $t2")

    def test_int_register_where_fp_expected(self):
        with pytest.raises(AsmError, match="expected fp register"):
            assemble("add.d $f0, $t1, $f2")

    def test_error_reports_line(self):
        with pytest.raises(AsmError) as excinfo:
            assemble("nop\nnop\nbogus $t0\n")
        assert excinfo.value.line == 3


class TestPseudoInstructions:
    def test_li_small(self):
        program = assemble("li $t0, 42")
        assert [i.op for i in program.instructions] == ["addiu"]

    def test_li_negative(self):
        program = assemble("li $t0, -1")
        assert [i.op for i in program.instructions] == ["addiu"]
        assert program.instructions[0].imm == -1

    def test_li_unsigned_16(self):
        program = assemble("li $t0, 0xFFFF")
        assert [i.op for i in program.instructions] == ["ori"]

    def test_li_large(self):
        program = assemble("li $t0, 0x12345678")
        assert [i.op for i in program.instructions] == ["lui", "ori"]
        assert program.instructions[0].imm == 0x1234
        assert program.instructions[1].imm == 0x5678

    def test_li_lui_only(self):
        program = assemble("li $t0, 0x10000")
        assert [i.op for i in program.instructions] == ["lui"]

    def test_la(self):
        program = assemble(".data\nx: .word 0\n.text\nla $t0, x")
        assert [i.op for i in program.instructions] == ["lui", "ori"]
        address = program.symbols["x"]
        assert program.instructions[0].imm == (address >> 16) & 0xFFFF
        assert program.instructions[1].imm == address & 0xFFFF

    def test_move(self):
        program = assemble("move $t0, $t1")
        instr = program.instructions[0]
        assert instr.op == "addu" and instr.src2 == 0

    def test_unconditional_b(self):
        program = assemble("x: b x")
        instr = program.instructions[0]
        assert instr.op == "beq" and instr.target == 0

    def test_compare_branches(self):
        program = assemble("x: blt $t0, $t1, x\nbge $t0, $t1, x\n")
        ops = [i.op for i in program.instructions]
        assert ops == ["slt", "bne", "slt", "beq"]

    def test_bgt_swaps_operands(self):
        program = assemble("x: bgt $t0, $t1, x")
        slt = program.instructions[0]
        assert (slt.src1, slt.src2) == (9, 8)  # $t1, $t0 swapped

    def test_symbolic_memory_operand(self):
        program = assemble(".data\nv: .word 5\n.text\nlw $t0, v")
        assert [i.op for i in program.instructions] == ["lui", "ori", "lw"]

    def test_beqz_bnez(self):
        program = assemble("x: beqz $t0, x\nbnez $t0, x")
        ops = [i.op for i in program.instructions]
        assert ops == ["beq", "bne"]

    def test_label_count_stability(self):
        # Pseudo expansion must keep label addresses consistent.
        program = assemble(
            "        li $t0, 0x12345678\n"
            "target: addiu $t0, $t0, 1\n"
            "        b target\n"
        )
        assert program.labels["target"] == 2
        assert program.instructions[3].target == 2
