"""ServiceClient retry policy: Retry-After hints and the deadline cap.

``_attempt`` is replaced with a scripted transport and both the clock
and ``sleep`` are injected, so every test is deterministic and fast —
no sockets, no real time.
"""

import random

import pytest

from repro.service.client import ServiceClient, ServiceUnavailable


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_client(outcomes, **kwargs):
    """A client whose transport replays ``outcomes`` in order.

    Each outcome is either an exception instance (raised) or a
    ``(status, headers, raw)`` tuple.  Sleeps advance the fake clock
    and are recorded.
    """
    clock = FakeClock()
    sleeps = []

    def fake_sleep(delay):
        sleeps.append(delay)
        clock.now += delay

    kwargs.setdefault("rng", random.Random(0))
    client = ServiceClient(sleep=fake_sleep, clock=clock, **kwargs)
    script = iter(outcomes)

    def attempt(method, path, body):
        outcome = next(script)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._attempt = attempt
    return client, sleeps, clock


class TestRetryAfter:
    def test_hint_survives_into_the_final_error(self):
        client, __, __c = make_client(
            [(429, {"Retry-After": "7"}, b"{}")], retries=0)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.request("POST", "/v1/analyze", {"workload": "com"})
        assert excinfo.value.last_status == 429
        assert excinfo.value.retry_after == 7.0

    def test_largest_hint_wins(self):
        client, __, __c = make_client(
            [(429, {"Retry-After": "5"}, b"{}"),
             (429, {"Retry-After": "2"}, b"{}")], retries=1)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.request("GET", "/v1/workloads")
        assert excinfo.value.retry_after == 5.0

    def test_hint_floors_the_backoff_sleep(self):
        client, sleeps, __ = make_client(
            [(429, {"Retry-After": "0.5"}, b"{}"),
             (200, {}, b'{"ok": true}')],
            retries=1, backoff_base=0.001, backoff_cap=0.001)
        response = client.request("GET", "/healthz")
        assert response.payload == {"ok": True}
        assert sleeps and sleeps[0] >= 0.5


class TestDeadline:
    def test_deadline_caps_the_retry_budget(self):
        # Ten retries allowed, but sleeps of ~0.5s against a 1s
        # deadline cut the run short — and the error says so.
        outcomes = [ConnectionRefusedError() for __ in range(11)]
        client, __, __c = make_client(
            outcomes, retries=10, deadline=1.0,
            backoff_base=0.5, backoff_cap=0.5)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.request("GET", "/healthz")
        assert "retry deadline exhausted" in str(excinfo.value)
        assert excinfo.value.attempts < 11

    def test_no_deadline_uses_every_retry(self):
        outcomes = [ConnectionRefusedError() for __ in range(4)]
        client, sleeps, __ = make_client(
            outcomes, retries=3, backoff_base=0.01, backoff_cap=0.02)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.request("GET", "/healthz")
        assert excinfo.value.attempts == 4
        assert len(sleeps) == 3

    def test_growing_hints_cannot_outlive_the_deadline(self):
        # A flapping server whose hints keep growing must not pin a
        # deadlined client forever.
        outcomes = [(429, {"Retry-After": str(2 ** n)}, b"{}")
                    for n in range(10)]
        client, sleeps, clock = make_client(
            outcomes, retries=9, deadline=5.0,
            backoff_base=0.01, backoff_cap=0.02)
        with pytest.raises(ServiceUnavailable):
            client.request("GET", "/healthz")
        assert clock.now <= 5.0
