"""QoS through the broker: fairness, quota shedding, attribution.

Same style as ``test_broker.py`` — the broker runs on a real event
loop with an injected ``batch_runner`` (and here an injected quota
clock), so scheduling and quota behaviour is deterministic and no
instruction is ever simulated.
"""

import asyncio
import dataclasses
import threading

import pytest

from repro.runner import ExperimentConfig
from repro.service import AnalysisBroker, BrokerConfig, Overloaded
from repro.service.qos import QuotaExceeded, qos_policy_from_dict

CONFIG = ExperimentConfig(max_instructions=1_000)

#: The fairness cast: alice is interactive, mallory background.
FAIR_POLICY = qos_policy_from_dict({
    "batch_max": 1,
    "tenants": {
        "alice": {"class": "interactive"},
        "mallory": {"class": "background"},
    },
})


def cfg(gen_cap: int) -> ExperimentConfig:
    """Distinct job identities without distinct workloads."""
    return dataclasses.replace(CONFIG, gen_cap=gen_cap)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class GatedRunner:
    """batch_runner seam whose *first* batch blocks on an event, so a
    test can pile up queued work behind a busy executor."""

    def __init__(self):
        self.calls: list[list] = []
        self.started = threading.Event()
        self.gate = threading.Event()

    def __call__(self, pairs):
        self.calls.append(list(pairs))
        if len(self.calls) == 1:
            self.started.set()
            self.gate.wait(10)
        return [{"workload": name, "gen_cap": config.gen_cap}
                for name, config in pairs]

    @property
    def jobs_run(self) -> int:
        return sum(len(call) for call in self.calls)


def run(coro):
    return asyncio.run(coro)


def make_broker(batch_runner, qos=None, quota_clock=None, **overrides):
    defaults = dict(workers=1, batch_window=0.0, qos=qos)
    defaults.update(overrides)
    return AnalysisBroker(config=BrokerConfig(**defaults),
                          batch_runner=batch_runner,
                          quota_clock=quota_clock)


class TestFairness:
    def test_background_flood_cannot_starve_interactive(self):
        # A background job occupies the single worker while six more
        # background jobs queue; two interactive jobs arrive *last*.
        # Weighted-fair dispatch must run both interactive jobs ahead
        # of (almost all of) the earlier background queue.
        runner = GatedRunner()
        done_order: list[tuple[str, int]] = []

        async def submit(broker, tenant, config):
            await broker.submit("com", config, tenant=tenant)
            done_order.append((tenant, config.gen_cap))

        async def main():
            broker = make_broker(runner, qos=FAIR_POLICY)
            broker.start()
            blocker = asyncio.create_task(
                submit(broker, "mallory", cfg(100))
            )
            await asyncio.to_thread(runner.started.wait, 5)
            background = [
                asyncio.create_task(submit(broker, "mallory", cfg(i)))
                for i in range(6)
            ]
            await asyncio.sleep(0.2)    # let them reach the queue
            interactive = [
                asyncio.create_task(submit(broker, "alice", cfg(10 + i)))
                for i in range(2)
            ]
            await asyncio.sleep(0.2)
            runner.gate.set()
            await asyncio.gather(blocker, *background, *interactive)
            await broker.drain()

        run(main())
        # Ordering bound: the dispatcher may have pre-popped at most
        # one background job before the interactive work arrived, so
        # both interactive jobs run within the first three batches
        # after the blocker — never behind the whole background queue.
        post_blocker = [call[0][1].gen_cap for call in runner.calls[1:]]
        assert set(post_blocker[:3]) >= {10, 11}, post_blocker
        # Latency bound on completions: every interactive request
        # finishes before the last four background requests.
        positions = {gen_cap: index
                     for index, (__, gen_cap) in enumerate(done_order)}
        last_interactive = max(positions[10], positions[11])
        later_background = sum(
            1 for (tenant, gen_cap), index
            in zip(done_order, range(len(done_order)))
            if tenant == "mallory" and index > last_interactive
        )
        assert later_background >= 4, done_order

    def test_batch_max_bounds_every_batch(self):
        runner = GatedRunner()

        async def main():
            policy = qos_policy_from_dict({"batch_max": 2})
            broker = make_broker(runner, qos=policy)
            broker.start()
            blocker = asyncio.create_task(
                broker.submit("com", cfg(100), tenant="alice")
            )
            await asyncio.to_thread(runner.started.wait, 5)
            tasks = [
                asyncio.create_task(
                    broker.submit("com", cfg(i), tenant="alice")
                )
                for i in range(5)
            ]
            await asyncio.sleep(0.2)
            runner.gate.set()
            await asyncio.gather(blocker, *tasks)
            await broker.drain()

        run(main())
        assert runner.jobs_run == 6
        assert max(len(call) for call in runner.calls) <= 2

    def test_no_policy_keeps_single_fifo_class(self):
        runner = GatedRunner()

        async def main():
            broker = make_broker(runner)       # qos=None
            broker.start()
            payload, status = await broker.submit("com", CONFIG,
                                                  tenant="alice")
            await broker.drain()
            assert "qos" not in broker.stats()
            return status

        assert run(main()) == "computed"


class TestQuotas:
    def test_rate_shed_is_per_tenant_with_retry_after(self):
        clock = FakeClock()
        policy = qos_policy_from_dict(
            {"tenants": {"mallory": {"rate": 1.0, "burst": 1}}}
        )
        runner = GatedRunner()

        async def main():
            broker = make_broker(runner, qos=policy, quota_clock=clock)
            broker.start()
            await broker.submit("com", CONFIG, tenant="mallory")
            # Bucket dry: shed before any queue or store work, with a
            # per-tenant hint; Overloaded so the 429 path is shared.
            with pytest.raises(QuotaExceeded) as excinfo:
                await broker.submit("com", CONFIG, tenant="mallory")
            assert isinstance(excinfo.value, Overloaded)
            assert excinfo.value.tenant == "mallory"
            assert excinfo.value.scope == "rate"
            assert excinfo.value.retry_after >= 1
            # An innocent tenant is untouched by mallory's dry bucket.
            await broker.submit("com", CONFIG, tenant="alice")
            # And the bucket refills on the injected clock.
            clock.advance(1.0)
            __, status = await broker.submit("com", CONFIG,
                                             tenant="mallory")
            await broker.drain()
            return status, broker.attribution()

        status, attribution = run(main())
        assert status == "warm"                # rate bills warm hits too
        assert attribution["mallory"]["shed"] == {"rate": 1}
        assert attribution["alice"]["shed"] == {}

    def test_inflight_cap_counts_owned_cold_jobs_only(self):
        policy = qos_policy_from_dict(
            {"tenants": {"mallory": {"max_inflight": 1}}}
        )
        runner = GatedRunner()

        async def main():
            broker = make_broker(runner, qos=policy)
            broker.start()
            first = asyncio.create_task(
                broker.submit("com", cfg(1), tenant="mallory")
            )
            await asyncio.to_thread(runner.started.wait, 5)
            # A second *distinct* cold job would exceed the cap...
            with pytest.raises(QuotaExceeded) as excinfo:
                await broker.submit("com", cfg(2), tenant="mallory")
            assert excinfo.value.scope == "inflight"
            # ...but joining the job already in flight is free: a
            # coalesced request owns nothing.
            __, status = await broker.submit("com", cfg(1),
                                             tenant="mallory")
            assert status == "coalesced"
            runner.gate.set()
            await first
            # The done callback released the slot: cold is admitted.
            __, status = await broker.submit("com", cfg(3),
                                             tenant="mallory")
            assert status == "computed"
            await broker.drain()

        run(main())

    def test_quota_errors_do_not_leak_inflight_slots(self):
        # A shed at the global admission gate must release the
        # tenant's just-claimed in-flight slot.
        policy = qos_policy_from_dict(
            {"tenants": {"alice": {"max_inflight": 4}}}
        )
        runner = GatedRunner()

        async def main():
            broker = make_broker(runner, qos=policy, max_queue=0)
            broker.start()
            with pytest.raises(Overloaded):
                await broker.submit("com", CONFIG, tenant="alice")
            # end() dropped the zeroed entry: nothing is in flight.
            assert broker.stats()["qos"]["quotas"] == {}
            await broker.drain()
            return broker.attribution()

        attribution = run(main())
        assert attribution["alice"]["shed"] == {"backpressure": 1}


class TestAttribution:
    def test_coalesced_billed_to_each_requester_executed_once(self):
        runner = GatedRunner()

        async def main():
            broker = make_broker(runner, qos=FAIR_POLICY)
            broker.start()
            owner = asyncio.create_task(
                broker.submit("com", CONFIG, tenant="alice")
            )
            await asyncio.to_thread(runner.started.wait, 5)
            joiner = asyncio.create_task(
                broker.submit("com", CONFIG, tenant="mallory")
            )
            await asyncio.sleep(0.05)
            runner.gate.set()
            (__, owner_status), (__, joiner_status) = \
                await asyncio.gather(owner, joiner)
            await broker.drain()
            return owner_status, joiner_status, broker.attribution()

        owner_status, joiner_status, attribution = run(main())
        assert runner.jobs_run == 1            # executed once
        assert owner_status == "computed"
        assert joiner_status == "coalesced"
        # ...billed to each requester.
        assert attribution["alice"]["requests"] == 1
        assert attribution["mallory"]["requests"] == 1
        assert attribution["mallory"]["served"] == {"coalesced": 1}

    def test_computed_requests_split_into_phases(self):
        runner = GatedRunner()

        async def main():
            broker = make_broker(runner, qos=FAIR_POLICY)
            broker.start()
            await broker.submit("com", CONFIG, tenant="alice")
            await broker.submit("com", CONFIG, tenant="alice")  # warm
            await broker.drain()
            return broker.attribution()

        attribution = run(main())
        entry = attribution["alice"]
        assert entry["served"] == {"computed": 1, "warm": 1}
        # The computed request carries queue + pool residual; the warm
        # one billed its whole (tiny) wall to the store phase.
        assert "pool" in entry["phases"]
        assert "store" in entry["phases"]
        assert entry["wall_seconds"] > 0

    def test_anonymous_requests_bill_the_default_tenant(self):
        runner = GatedRunner()

        async def main():
            broker = make_broker(runner, qos=FAIR_POLICY)
            broker.start()
            await broker.submit("com", CONFIG)
            await broker.drain()
            return broker.attribution()

        attribution = run(main())
        assert attribution["default"]["requests"] == 1

    def test_stats_expose_policy_quotas_and_tenants(self):
        runner = GatedRunner()

        clock = FakeClock()

        async def main():
            policy = qos_policy_from_dict(
                {"tenants": {"alice": {"rate": 8.0}}}
            )
            broker = make_broker(runner, qos=policy, quota_clock=clock)
            broker.start()
            await broker.submit("com", CONFIG, tenant="alice")
            stats = broker.stats()
            await broker.drain()
            return stats

        stats = run(main())
        qos = stats["qos"]
        assert qos["policy"]["tenants"]["alice"]["rate"] == 8.0
        assert qos["quotas"]["alice"]["tokens"] == 7.0
        assert qos["tenants"]["alice"]["requests"] == 1
