"""Broker semantics: single-flight, batching, shedding, drain.

These tests drive :class:`AnalysisBroker` directly on an event loop
with an injected ``batch_runner``, so scheduling behaviour is checked
without simulating a single instruction (the real runner path is
covered by the server tests).
"""

import asyncio
import dataclasses
import time

import pytest

from repro.runner import ExperimentConfig, Job, ResultStore, job_key
from repro.service import (
    AnalysisBroker,
    BrokerClosed,
    BrokerConfig,
    JobError,
    Overloaded,
)

CONFIG = ExperimentConfig(max_instructions=1_000)


class RecordingRunner:
    """batch_runner seam: records calls, answers with stub payloads.

    ``delay`` holds the batch open on the executor thread, so a test
    can guarantee later submissions find the job still in flight.
    """

    def __init__(self, outcome=None, delay: float = 0.0):
        self.calls: list[list] = []
        self.outcome = outcome
        self.delay = delay

    def __call__(self, pairs):
        self.calls.append(list(pairs))
        if self.delay:
            time.sleep(self.delay)
        if self.outcome is not None:
            return [self.outcome for __ in pairs]
        return [{"workload": name, "call": len(self.calls)}
                for name, __ in pairs]

    @property
    def jobs_run(self) -> int:
        return sum(len(call) for call in self.calls)


def run(coro):
    return asyncio.run(coro)


def make_broker(batch_runner, store=None, **overrides):
    defaults = dict(workers=2, batch_window=0.05)
    defaults.update(overrides)
    return AnalysisBroker(store=store, config=BrokerConfig(**defaults),
                          batch_runner=batch_runner)


class TestSingleFlight:
    def test_identical_concurrent_requests_run_once(self):
        # The batch out-lives every submission's admission, so each
        # joiner must coalesce rather than sneak a warm memo hit.
        runner = RecordingRunner(delay=0.3)

        async def main():
            broker = make_broker(runner)
            broker.start()
            results = await asyncio.gather(
                *(broker.submit("com", CONFIG) for __ in range(8))
            )
            await broker.drain()
            return results

        results = run(main())
        # One pool job total, every caller answered.
        assert runner.jobs_run == 1
        assert len(results) == 8
        payloads = {id(payload) for payload, __ in results}
        assert len(payloads) == 1
        statuses = [status for __, status in results]
        assert statuses.count("computed") == 1
        assert statuses.count("coalesced") == 7

    def test_distinct_requests_are_not_coalesced(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner)
            broker.start()
            configs = [dataclasses.replace(CONFIG, scale=s)
                       for s in (1, 2, 3)]
            results = await asyncio.gather(
                *(broker.submit("com", config) for config in configs)
            )
            await broker.drain()
            return results

        results = run(main())
        assert runner.jobs_run == 3
        assert [status for __, status in results] == ["computed"] * 3


class TestBatching:
    def test_burst_lands_in_one_batch(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner, batch_window=0.2)
            broker.start()
            configs = [dataclasses.replace(CONFIG, scale=s)
                       for s in (1, 2, 3, 4)]
            await asyncio.gather(
                *(broker.submit("com", config) for config in configs)
            )
            await broker.drain()

        run(main())
        assert len(runner.calls) == 1
        assert len(runner.calls[0]) == 4

    def test_batch_failure_resolves_every_member(self):
        def exploding(pairs):
            raise RuntimeError("executor died")

        async def main():
            broker = make_broker(exploding)
            broker.start()
            with pytest.raises(JobError, match="executor died"):
                await broker.submit("com", CONFIG)
            await broker.drain()

        run(main())

    def test_per_job_failure_raises_job_error(self):
        detail = {"workload": "com", "error": "boom", "kind": "error"}
        runner = RecordingRunner(outcome=JobError(detail))

        async def main():
            broker = make_broker(runner)
            broker.start()
            with pytest.raises(JobError) as excinfo:
                await broker.submit("com", CONFIG)
            await broker.drain()
            return excinfo.value

        error = run(main())
        assert error.detail["error"] == "boom"


class TestWarmPath:
    def test_store_hit_skips_the_pool(self, tmp_path):
        store = ResultStore(tmp_path)
        key = job_key(Job("com", CONFIG))
        store.put(key, {"canned": True})
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner, store=store)
            broker.start()
            first = await broker.submit("com", CONFIG)
            second = await broker.submit("com", CONFIG)
            await broker.drain()
            return first, second

        (payload1, status1), (payload2, status2) = run(main())
        assert runner.calls == []          # never touched the pool
        assert (status1, status2) == ("warm", "warm")
        assert payload1 == {"canned": True}

    def test_computed_results_warm_the_memo(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner)
            broker.start()
            __, first = await broker.submit("com", CONFIG)
            __, second = await broker.submit("com", CONFIG)
            await broker.drain()
            return first, second

        first, second = run(main())
        assert (first, second) == ("computed", "warm")
        assert runner.jobs_run == 1


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner, max_queue=0)
            broker.start()
            with pytest.raises(Overloaded) as excinfo:
                await broker.submit("com", CONFIG)
            await broker.drain()
            return excinfo.value

        error = run(main())
        assert error.retry_after >= 1
        assert "queue full" in str(error)

    def test_excess_wait_estimate_sheds(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner, max_wait=0.0001)
            broker.start()
            with pytest.raises(Overloaded, match="estimated wait"):
                await broker.submit("com", CONFIG)
            await broker.drain()

        run(main())

    def test_queued_depth_counts_toward_the_bound(self):
        runner = RecordingRunner()

        async def main():
            # A wide batch window parks the first job in the queue.
            broker = make_broker(runner, max_queue=1, batch_window=1.0)
            broker.start()
            first = asyncio.create_task(broker.submit("com", CONFIG))
            await asyncio.sleep(0.05)
            other = dataclasses.replace(CONFIG, scale=2)
            with pytest.raises(Overloaded):
                await broker.submit("com", other)
            await broker.drain()
            return await first

        payload, status = run(main())
        assert status == "computed"
        assert payload["workload"] == "com"


class TestDrain:
    def test_drain_finishes_queued_work(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner, batch_window=0.5)
            broker.start()
            pending = asyncio.create_task(broker.submit("com", CONFIG))
            await asyncio.sleep(0.05)      # admitted, still queued
            await broker.drain()
            assert pending.done()
            return await pending

        payload, status = run(main())
        assert status == "computed"
        assert runner.jobs_run == 1

    def test_drain_waits_for_an_in_flight_cold_batch(self):
        # Not just queued work: a batch already *executing* on the
        # pool thread must finish and resolve its waiters before
        # drain returns — a rolling fleet restart depends on it.
        runner = RecordingRunner(delay=0.4)

        async def main():
            broker = make_broker(runner, batch_window=0.01)
            broker.start()
            pending = asyncio.create_task(broker.submit("com", CONFIG))
            await asyncio.sleep(0.15)   # dispatched, on the executor
            assert runner.calls          # the batch really is in flight
            await broker.drain()
            assert pending.done()
            return await pending

        payload, status = run(main())
        assert status == "computed"
        assert payload["workload"] == "com"
        assert runner.jobs_run == 1

    def test_submit_after_drain_is_refused(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner)
            broker.start()
            await broker.drain()
            with pytest.raises(BrokerClosed):
                await broker.submit("com", CONFIG)

        run(main())

    def test_drain_is_idempotent(self):
        runner = RecordingRunner()

        async def main():
            broker = make_broker(runner)
            broker.start()
            await broker.submit("com", CONFIG)
            await broker.drain()
            await broker.drain()

        run(main())
