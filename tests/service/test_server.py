"""HTTP contract, coalescing over the wire, shedding, faults, drain.

Every test hosts the real stack — asyncio server, broker, runner — on
a daemon thread via :class:`BackgroundServer` and talks to it with the
blocking :class:`ServiceClient`, exactly as an operator would.
Budgets are kept tiny: these tests exercise plumbing, not analysis.
"""

import threading

import pytest

from repro.runner import FaultPlan, FaultSpec, ResultStore, TraceStore
from repro.runner.faults import set_fault_plan
from repro.service import (
    BackgroundServer,
    BrokerConfig,
    RequestFailed,
    ServiceClient,
    ServiceUnavailable,
)

BUDGET = 1_500


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(
        store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
        broker_config=BrokerConfig(workers=2, batch_window=0.02),
    ) as background:
        yield background


def client_for(server, **kwargs) -> ServiceClient:
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("timeout", 120.0)
    return ServiceClient(port=server.port, **kwargs)


class TestEndpointContract:
    def test_healthz(self, server):
        assert client_for(server).health() == {"status": "ok"}

    def test_readyz_reports_load(self, server):
        ready = client_for(server).ready()
        assert ready["ready"] is True
        assert ready["queue_depth"] == 0

    def test_workloads_catalogue(self, server):
        catalogue = client_for(server).workloads()
        assert {"name", "kind", "description"} <= set(catalogue[0])
        assert any(entry["name"] == "com" for entry in catalogue)

    def test_metrics_is_valid_exposition(self, server):
        client = client_for(server)
        client.health()
        text = client.metrics()
        typed = set()
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                typed.add(line.split()[2])
            elif line and not line.startswith("#"):
                name = line.split("{")[0].split()[0]
                assert name in typed, f"sample {name} missing # TYPE"
        assert "repro_service_http_2xx_total" in text

    def test_unknown_route_is_404(self, server):
        with pytest.raises(RequestFailed) as excinfo:
            client_for(server).request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, server):
        with pytest.raises(RequestFailed) as excinfo:
            client_for(server).request("GET", "/v1/analyze")
        assert excinfo.value.status == 405

    def test_bad_json_is_400(self, server):
        status, __, raw = client_for(server)._attempt(
            "POST", "/v1/analyze", b"{nope"
        )
        assert status == 400
        assert b"error" in raw

    def test_unknown_workload_is_400(self, server):
        with pytest.raises(RequestFailed) as excinfo:
            client_for(server).analyze("zzz")
        assert excinfo.value.status == 400
        assert "unknown workload" in excinfo.value.payload["error"]


class TestAnalyzeFlow:
    def test_cold_then_warm(self, server):
        client = client_for(server)
        first = client.analyze("com", {"max_instructions": BUDGET})
        second = client.analyze("com", {"max_instructions": BUDGET})
        assert first["status"] == "computed"
        assert second["status"] == "warm"
        assert first["result"] == second["result"]
        assert first["result"]["nodes"] == BUDGET

    def test_concurrent_identical_requests_coalesce(self, server):
        client = client_for(server)
        barrier = threading.Barrier(6)
        statuses, errors = [], []

        def hit():
            barrier.wait()
            try:
                response = client.analyze(
                    "go", {"max_instructions": 40_000}
                )
                statuses.append(response["status"])
            except Exception as error:  # noqa: BLE001 — fail the test
                errors.append(error)

        threads = [threading.Thread(target=hit) for __ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        # Exactly one computation; everyone else coalesced onto it or
        # (having arrived after it finished) was served warm.
        assert statuses.count("computed") == 1
        assert set(statuses) <= {"computed", "coalesced", "warm"}

    def test_sweep_runs_every_pair(self, server):
        response = client_for(server).sweep(
            configs=[{"max_instructions": 1_000},
                     {"max_instructions": 2_000}],
            workloads=["com"],
        )
        assert response["failed"] == 0
        nodes = sorted(job["result"]["nodes"]
                       for job in response["jobs"])
        assert nodes == [1_000, 2_000]


class TestBackpressure:
    def test_saturated_server_sheds_with_429(self, tmp_path):
        with BackgroundServer(
            store=ResultStore(tmp_path),
            broker_config=BrokerConfig(workers=1, max_queue=0),
        ) as background:
            client = ServiceClient(port=background.port, retries=0)
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.analyze("com", {"max_instructions": BUDGET})
            assert excinfo.value.last_status == 429

    def test_client_honours_retry_after(self, tmp_path):
        naps = []
        with BackgroundServer(
            store=ResultStore(tmp_path),
            broker_config=BrokerConfig(workers=1, max_queue=0),
        ) as background:
            client = ServiceClient(port=background.port, retries=1,
                                   sleep=naps.append)
            with pytest.raises(ServiceUnavailable):
                client.analyze("com", {"max_instructions": BUDGET})
        # One backoff nap, at least as long as the 429's Retry-After.
        assert len(naps) == 1
        assert naps[0] >= 1.0


class TestFaultSites:
    def teardown_method(self):
        set_fault_plan(None)

    def test_client_retries_through_dropped_connections(self, server):
        set_fault_plan(FaultPlan(specs={
            "service.accept": FaultSpec(schedule=(1, 2), max_fires=2),
        }))
        response = client_for(server, retries=3).request("GET", "/healthz")
        assert response.payload == {"status": "ok"}
        assert response.attempts == 3

    def test_client_retries_through_injected_500(self, server):
        set_fault_plan(FaultPlan(specs={
            "service.handler": FaultSpec(schedule=(1,), max_fires=1),
        }))
        response = client_for(server, retries=2).request("GET", "/healthz")
        assert response.payload == {"status": "ok"}
        assert response.attempts == 2

    def test_retries_exhausted_reports_unavailable(self, server):
        set_fault_plan(FaultPlan(specs={
            "service.accept": FaultSpec(schedule=(1, 2, 3, 4)),
        }))
        client = client_for(server, retries=1,
                            backoff_base=0.001, backoff_cap=0.01)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.request("GET", "/healthz")
        assert excinfo.value.attempts == 2


class TestGracefulDrain:
    def test_drain_mid_request_answers_then_exits_zero(self, tmp_path):
        background = BackgroundServer(
            store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
            broker_config=BrokerConfig(workers=1, batch_window=0.02),
        ).start()
        client = ServiceClient(port=background.port, retries=0,
                               timeout=120.0)
        box = {}

        def slow():
            box["response"] = client.analyze(
                "go", {"max_instructions": 100_000}
            )

        thread = threading.Thread(target=slow)
        thread.start()
        # Give the request time to be admitted, then drain under it.
        deadline_event = threading.Event()
        deadline_event.wait(0.3)
        exit_code = background.stop()       # blocks until drained
        thread.join(timeout=120)
        assert exit_code == 0
        assert box["response"]["status"] in ("computed", "coalesced")
        assert box["response"]["result"]["nodes"] == 100_000

    def test_drained_server_refuses_new_work(self, tmp_path):
        background = BackgroundServer(store=ResultStore(tmp_path)).start()
        port = background.port
        assert background.stop() == 0
        client = ServiceClient(port=port, retries=0, timeout=5.0)
        with pytest.raises(ServiceUnavailable):
            client.health()


class TestTenantAndQos:
    """Tenant identity over the wire and QoS end to end
    (docs/qos.md; the deterministic quota/fairness logic is covered
    in test_qos*.py — here we prove the HTTP plumbing)."""

    def qos_server(self, tmp_path, **tenant_specs):
        from repro.service.qos import qos_policy_from_dict

        policy = qos_policy_from_dict({"tenants": tenant_specs})
        return BackgroundServer(
            store=ResultStore(tmp_path), trace_store=TraceStore(tmp_path),
            broker_config=BrokerConfig(workers=2, batch_window=0.02,
                                       qos=policy),
        )

    def test_malformed_tenant_header_is_pointed_400(self, server):
        client = client_for(server, tenant="NOT A TENANT")
        with pytest.raises(RequestFailed) as excinfo:
            client.analyze("com", {"max_instructions": BUDGET})
        assert excinfo.value.status == 400
        assert "X-Repro-Tenant" in excinfo.value.payload["error"]

    def test_qos_key_in_body_is_pointed_400(self, server):
        with pytest.raises(RequestFailed) as excinfo:
            client_for(server).request(
                "POST", "/v1/analyze",
                {"workload": "com", "priority": "high"},
            )
        assert excinfo.value.status == 400
        assert "operator" in excinfo.value.payload["error"]

    def test_tenant_flows_into_attribution_and_metrics(self, tmp_path):
        with self.qos_server(
            tmp_path, alice={"class": "interactive"},
        ) as server:
            client = client_for(server, tenant="alice")
            client.analyze("com", {"max_instructions": BUDGET})
            ready = client.ready()
            assert ready["qos"]["tenants"]["alice"]["requests"] == 1
            assert 'tenant="alice"' in client.metrics()

    def test_quota_429_surfaces_per_tenant_retry_after(self, tmp_path):
        # mallory's bucket holds exactly one token and refills over
        # 1000s, so the second request sheds with a *large* hint that
        # can only have come from mallory's own bucket; the client
        # surfaces it exactly as global-shedding 429s.
        with self.qos_server(
            tmp_path, mallory={"rate": 0.001, "burst": 1},
        ) as server:
            client = client_for(server, tenant="mallory", retries=0)
            client.analyze("com", {"max_instructions": BUDGET})
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.analyze("com", {"max_instructions": BUDGET})
            assert excinfo.value.last_status == 429
            assert excinfo.value.retry_after >= 100
            # An innocent tenant is untouched.
            other = client_for(server, tenant="alice")
            response = other.analyze("com",
                                     {"max_instructions": BUDGET})
            assert response["status"] == "warm"
