"""QoS subsystem units: tenants, policy, quotas, DRR, attribution.

Everything here is deterministic — fake clocks for the token buckets,
the pure :class:`DeficitScheduler` driven directly, attribution built
from hand-made span trees — so the fairness and quota arithmetic is
checked without an event loop or a single simulated instruction (the
broker-level behaviour is in ``test_qos_broker.py``).
"""

import json
import pickle

import pytest

from repro.obs import Recorder
from repro.service.qos import (
    CLASSES,
    DEFAULT_TENANT,
    DeficitScheduler,
    PHASES,
    QosError,
    QosPolicy,
    QuotaExceeded,
    TenantAccounting,
    TenantError,
    TenantQuotas,
    TokenBucket,
    attribution_from_counters,
    attribution_from_prometheus,
    load_qos_policy,
    parse_tenant,
    phases_from_span,
    qos_policy_from_dict,
    render_attribution,
)


class FakeClock:
    """A controllable monotonic clock for the token buckets."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Tenant identity.
# ----------------------------------------------------------------------

class TestTenant:
    def test_absent_header_is_default_tenant(self):
        assert parse_tenant(None) is DEFAULT_TENANT

    def test_valid_names(self):
        for name in ("alice", "team-7", "a.b_c", "0x9"):
            assert parse_tenant(name).name == name

    def test_surrounding_whitespace_is_stripped(self):
        assert parse_tenant("  alice ").name == "alice"

    def test_empty_is_rejected_with_pointed_message(self):
        with pytest.raises(TenantError, match="omit the header"):
            parse_tenant("   ")

    def test_too_long_is_rejected(self):
        with pytest.raises(TenantError, match="too long"):
            parse_tenant("a" * 33)

    def test_uppercase_and_bad_characters_are_rejected(self):
        for bad in ("Alice", "a b", "-lead", "a/b", "a\nb"):
            with pytest.raises(TenantError, match="lowercase"):
                parse_tenant(bad)


# ----------------------------------------------------------------------
# Policy file.
# ----------------------------------------------------------------------

POLICY_DICT = {
    "default_class": "batch",
    "batch_max": 4,
    "classes": {"interactive": {"weight": 10}},
    "defaults": {"rate": 5.0, "max_inflight": 8},
    "tenants": {
        "alice": {"class": "interactive", "rate": 20.0, "burst": 40},
        "mallory": {"class": "background", "rate": 2.0,
                    "max_inflight": 1},
    },
}


class TestQosPolicy:
    def test_from_dict_resolves_tenants(self):
        policy = qos_policy_from_dict(POLICY_DICT)
        alice = policy.spec_for("alice")
        assert (alice.klass, alice.rate, alice.burst) == \
            ("interactive", 20.0, 40)
        assert alice.max_inflight == 8           # from [defaults]

    def test_unlisted_tenant_inherits_defaults(self):
        policy = qos_policy_from_dict(POLICY_DICT)
        spec = policy.spec_for("nobody")
        assert spec.klass == "batch"
        assert spec.rate == 5.0
        assert spec.burst == 5                   # derived from rate
        assert spec.max_inflight == 8

    def test_empty_policy_means_unlimited(self):
        policy = qos_policy_from_dict({})
        spec = policy.spec_for("anyone")
        assert spec.rate is None
        assert spec.max_inflight is None
        assert spec.klass == "batch"
        assert policy.batch_max is None

    def test_class_weights_in_priority_order(self):
        policy = qos_policy_from_dict(POLICY_DICT)
        assert list(policy.class_weights()) == list(CLASSES)
        assert policy.class_weights()["interactive"] == 10
        assert policy.class_weights()["background"] == 1

    def test_unknown_top_level_key_is_rejected(self):
        with pytest.raises(QosError, match="unknown top-level"):
            qos_policy_from_dict({"tenant": {}})

    def test_unknown_tenant_key_is_rejected(self):
        with pytest.raises(QosError, match="unknown key"):
            qos_policy_from_dict(
                {"tenants": {"alice": {"ratelimit": 5}}}
            )

    def test_unknown_class_is_rejected(self):
        with pytest.raises(QosError, match="classes are fixed"):
            qos_policy_from_dict({"classes": {"express": {"weight": 9}}})

    def test_bad_weight_is_rejected(self):
        with pytest.raises(QosError, match="weight"):
            qos_policy_from_dict({"classes": {"batch": {"weight": 0}}})

    def test_bad_rate_is_rejected(self):
        with pytest.raises(QosError, match="'rate'"):
            qos_policy_from_dict({"tenants": {"alice": {"rate": -1}}})

    def test_bad_batch_max_is_rejected(self):
        with pytest.raises(QosError, match="batch_max"):
            qos_policy_from_dict({"batch_max": 0})

    def test_default_class_must_exist(self):
        with pytest.raises(QosError, match="default_class"):
            QosPolicy(default_class="express")

    def test_load_json(self, tmp_path):
        path = tmp_path / "qos.json"
        path.write_text(json.dumps(POLICY_DICT))
        assert load_qos_policy(path).spec_for("alice").rate == 20.0

    def test_load_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "qos.toml"
        path.write_text(
            'default_class = "batch"\n'
            "batch_max = 4\n"
            "[tenants.alice]\n"
            'class = "interactive"\n'
            "rate = 20.0\n"
        )
        policy = load_qos_policy(path)
        assert policy.spec_for("alice").klass == "interactive"
        assert policy.batch_max == 4

    def test_load_errors_name_the_file(self, tmp_path):
        path = tmp_path / "qos.json"
        path.write_text("{nope")
        with pytest.raises(QosError, match="qos.json"):
            load_qos_policy(path)
        with pytest.raises(QosError, match="cannot read"):
            load_qos_policy(tmp_path / "missing.json")

    def test_policy_is_picklable_for_fleet_shipping(self):
        policy = qos_policy_from_dict(POLICY_DICT)
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_describe_is_json_safe(self):
        described = qos_policy_from_dict(POLICY_DICT).describe()
        assert json.loads(json.dumps(described)) == described
        assert described["tenants"]["mallory"]["class"] == "background"


# ----------------------------------------------------------------------
# Quotas.
# ----------------------------------------------------------------------

class TestTokenBucket:
    def test_starts_full_and_spends(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == pytest.approx(1.0)

    def test_hint_is_the_accrual_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == pytest.approx(0.25)
        clock.advance(0.1)                       # 0.4 tokens back
        assert bucket.try_take() == pytest.approx(0.15)

    def test_refill_is_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        for __ in range(3):
            assert bucket.try_take() == 0.0
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(3.0)


class TestTenantQuotas:
    def test_no_policy_means_no_limits(self):
        quotas = TenantQuotas(None, clock=FakeClock())
        for __ in range(1000):
            quotas.charge("anyone")
            quotas.begin("anyone")
        assert quotas.class_for("anyone") == "batch"

    def test_rate_shed_carries_tenant_and_hint(self):
        clock = FakeClock()
        policy = qos_policy_from_dict(
            {"tenants": {"mallory": {"rate": 2.0, "burst": 2}}}
        )
        quotas = TenantQuotas(policy, clock=clock)
        quotas.charge("mallory")
        quotas.charge("mallory")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.charge("mallory")
        assert excinfo.value.tenant == "mallory"
        assert excinfo.value.scope == "rate"
        assert excinfo.value.retry_after >= 1    # rounded hint, >= 1s
        clock.advance(0.5)                       # one token back
        quotas.charge("mallory")                 # admitted again

    def test_inflight_cap_and_release(self):
        policy = qos_policy_from_dict(
            {"tenants": {"alice": {"max_inflight": 2}}}
        )
        quotas = TenantQuotas(policy, clock=FakeClock())
        quotas.begin("alice")
        quotas.begin("alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.begin("alice")
        assert excinfo.value.scope == "inflight"
        quotas.end("alice")
        quotas.begin("alice")                    # slot freed

    def test_tenants_do_not_share_buckets(self):
        policy = qos_policy_from_dict({"defaults": {"rate": 1.0}})
        quotas = TenantQuotas(policy, clock=FakeClock())
        quotas.charge("alice")
        quotas.charge("bob")                     # own bucket, still full
        with pytest.raises(QuotaExceeded):
            quotas.charge("alice")

    def test_snapshot_is_json_safe(self):
        policy = qos_policy_from_dict({"defaults": {"rate": 4.0}})
        quotas = TenantQuotas(policy, clock=FakeClock())
        quotas.charge("alice")
        quotas.begin("alice")
        snapshot = quotas.snapshot()
        assert snapshot["alice"]["inflight"] == 1
        assert snapshot["alice"]["tokens"] == pytest.approx(3.0)
        json.dumps(snapshot)


# ----------------------------------------------------------------------
# Deficit round-robin.
# ----------------------------------------------------------------------

class TestDeficitScheduler:
    def test_default_is_plain_fifo(self):
        queue = DeficitScheduler()
        for item in "abc":
            queue.push("batch", item)
        assert queue.pop() == ["a", "b", "c"]
        assert len(queue) == 0

    def test_unknown_class_is_an_error(self):
        with pytest.raises(KeyError, match="express"):
            DeficitScheduler().push("express", "x")

    def test_higher_weight_goes_first(self):
        queue = DeficitScheduler({"interactive": 8, "batch": 4,
                                  "background": 1})
        for index in range(3):
            queue.push("background", f"bg{index}")
        for index in range(3):
            queue.push("interactive", f"int{index}")
        popped = queue.pop()
        assert popped[:3] == ["int0", "int1", "int2"]

    def test_weight_shares_over_saturated_period(self):
        # 2:1 weights, both classes kept saturated: over any window of
        # bounded pops the dispatch split tracks the weights.
        queue = DeficitScheduler({"batch": 2, "background": 1})
        for index in range(30):
            queue.push("batch", ("batch", index))
            queue.push("background", ("background", index))
        first_30 = []
        while len(first_30) < 30:
            first_30.extend(queue.pop(3))
        batch_share = sum(1 for klass, __ in first_30
                          if klass == "batch")
        assert batch_share == 20                 # exactly 2/3 of 30

    def test_limit_cut_mid_quantum_resumes_same_class(self):
        queue = DeficitScheduler({"interactive": 4, "background": 1})
        for index in range(4):
            queue.push("interactive", f"int{index}")
        queue.push("background", "bg0")
        assert queue.pop(2) == ["int0", "int1"]
        # The quantum was cut at 2 of 4; the next bounded pop resumes
        # interactive's unspent deficit instead of advancing.
        assert queue.pop(2) == ["int2", "int3"]
        assert queue.pop(2) == ["bg0"]

    def test_background_is_not_starved(self):
        # A continuous flood of interactive work: background must
        # still drain at its weight's pace, never be starved out.
        queue = DeficitScheduler({"interactive": 8, "background": 1})
        queue.push("background", "bg0")
        popped = []
        for round_number in range(10):
            for index in range(8):
                queue.push("interactive", (round_number, index))
            popped.extend(queue.pop(9))
            if "bg0" in popped:
                break
        assert "bg0" in popped

    def test_idle_class_banks_no_credit(self):
        queue = DeficitScheduler({"interactive": 8, "background": 1})
        for __ in range(5):                      # interactive idles
            queue.push("background", "bg")
            assert queue.pop() == ["bg"]
        for index in range(2):
            queue.push("interactive", f"int{index}")
            queue.push("background", f"late{index}")
        # Interactive's unused turns did not pile up deficit for
        # background (nor vice versa): normal 8:1 order applies.
        assert queue.pop()[:2] == ["int0", "int1"]

    def test_depth_and_classes_views(self):
        queue = DeficitScheduler({"interactive": 8, "background": 1})
        queue.push("background", "x")
        assert queue.classes == ("interactive", "background")
        assert queue.depth("background") == 1
        assert queue.depth("interactive") == 0


# ----------------------------------------------------------------------
# Attribution.
# ----------------------------------------------------------------------

def span_tree():
    """A hand-made qos.batch span in dict form (nested children)."""
    return {
        "name": "qos.batch", "wall": 1.0, "children": [
            {"name": "simulate", "wall": 0.4, "children": [
                # Nested under simulate: must NOT double count.
                {"name": "store.trace.put", "wall": 0.1, "children": []},
            ]},
            {"name": "analyze.kernel", "wall": 0.3, "children": []},
            {"name": "runner.batch", "wall": 0.2, "children": [
                {"name": "store.result.put", "wall": 0.1, "children": []},
            ]},
        ],
    }


class TestPhasesFromSpan:
    def test_first_classified_ancestor_wins(self):
        phases = phases_from_span(span_tree(), wall=1.2)
        assert phases["simulate"] == pytest.approx(0.4)
        assert phases["analyze"] == pytest.approx(0.3)
        # Only the store span OUTSIDE simulate counts.
        assert phases["store"] == pytest.approx(0.1)
        assert phases["pool"] == pytest.approx(0.4)

    def test_null_span_bills_everything_to_pool(self):
        class NullSpan:
            children = ()

        phases = phases_from_span(NullSpan(), wall=2.0)
        assert phases == {"pool": 2.0}

    def test_residual_never_negative(self):
        phases = phases_from_span(span_tree(), wall=0.5)
        assert phases["pool"] == 0.0


class TestTenantAccounting:
    def make(self):
        return TenantAccounting(), Recorder()

    def test_record_mirrors_into_labelled_counters(self):
        accounting, recorder = self.make()
        accounting.record("alice", "computed", 2.0,
                          {"queue": 0.5, "simulate": 1.0}, recorder)
        counters = recorder.snapshot()["counters"]
        assert counters['qos.requests{tenant="alice"}'] == 1
        assert counters[
            'qos.served{status="computed",tenant="alice"}'] == 1
        assert counters[
            'qos.phase_seconds{phase="simulate",tenant="alice"}'] \
            == pytest.approx(1.0)

    def test_shed_split_by_reason(self):
        accounting, recorder = self.make()
        accounting.record_shed("mallory", "rate", recorder)
        accounting.record_shed("mallory", "rate", recorder)
        accounting.record_shed("mallory", "inflight", recorder)
        snapshot = accounting.snapshot()
        assert snapshot["mallory"]["shed"] == {"inflight": 1, "rate": 2}

    def test_report_round_trips_through_counters(self):
        accounting, recorder = self.make()
        accounting.record("alice", "computed", 2.0,
                          {"queue": 0.5, "simulate": 1.4}, recorder)
        accounting.record_shed("alice", "rate", recorder)
        report = attribution_from_counters(
            recorder.snapshot()["counters"]
        )
        entry = report["tenants"]["alice"]
        assert entry["requests"] == 1
        assert entry["shed"] == {"rate": 1}
        assert entry["wall_seconds"] == pytest.approx(2.0)
        assert entry["coverage"] == pytest.approx(0.95)
        assert entry["bottleneck"] == "simulate"

    def test_report_round_trips_through_prometheus(self):
        from repro.obs.export import to_prometheus

        accounting, recorder = self.make()
        accounting.record("alice", "warm", 0.25, {"store": 0.25},
                          recorder)
        accounting.record_shed("bob", "backpressure", recorder)
        text = to_prometheus(recorder.snapshot())
        report = attribution_from_prometheus(text)
        assert report["tenants"]["alice"]["coverage"] \
            == pytest.approx(1.0)
        assert report["tenants"]["bob"]["shed"] == {"backpressure": 1}

    def test_render_lists_every_phase_column(self):
        accounting, recorder = self.make()
        accounting.record("alice", "computed", 1.0,
                          {"queue": 0.2, "pool": 0.8}, recorder)
        table = render_attribution(
            attribution_from_counters(recorder.snapshot()["counters"])
        )
        for phase in PHASES:
            assert f"{phase}%" in table
        assert "alice" in table
        assert "pool" in table.splitlines()[-1]  # the bottleneck

    def test_render_empty_report(self):
        assert "no qos.* counters" in render_attribution({"tenants": {}})
