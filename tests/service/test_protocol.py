"""Wire-format validation: the protocol module is the trust boundary."""

import pytest

from repro.runner import ExperimentConfig
from repro.service import (
    ProtocolError,
    config_from_dict,
    config_to_dict,
    parse_analyze_request,
    parse_sweep_request,
)
from repro.workloads import SUITE


class TestConfigRoundTrip:
    def test_default_config_round_trips(self):
        config = ExperimentConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_custom_config_round_trips(self):
        config = ExperimentConfig(
            scale=3, max_instructions=9_999, workloads=("com", "go"),
            predictors=("last", "stride"), trees_for=("context",),
            gen_cap=16,
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_none_payload_is_the_default_config(self):
        assert config_from_dict(None) == ExperimentConfig()

    def test_missing_keys_inherit_defaults(self):
        config = config_from_dict({"scale": 2})
        assert config.scale == 2
        assert config.max_instructions == ExperimentConfig().max_instructions

    def test_sequences_become_tuples(self):
        config = config_from_dict({"workloads": ["com"]})
        assert config.workloads == ("com",)
        assert isinstance(config.predictors, tuple)

    def test_unbounded_budget_survives(self):
        config = config_from_dict({"max_instructions": None})
        assert config.max_instructions is None


class TestConfigRejection:
    def test_unknown_field_is_an_error(self):
        with pytest.raises(ProtocolError, match="unknown config field"):
            config_from_dict({"max_instrs": 10})

    def test_non_object_is_an_error(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            config_from_dict([1, 2])

    def test_string_where_array_expected(self):
        with pytest.raises(ProtocolError, match="array of strings"):
            config_from_dict({"workloads": "com"})

    def test_non_string_array_members(self):
        with pytest.raises(ProtocolError, match="array of strings"):
            config_from_dict({"predictors": [1, 2]})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ProtocolError, match="integer"):
            config_from_dict({"scale": True})

    def test_float_scale_is_an_error(self):
        with pytest.raises(ProtocolError, match="integer"):
            config_from_dict({"scale": 1.5})

    @pytest.mark.parametrize("field", [
        "policy", "engine", "jobs", "timeout", "retries",
        "segments", "segment_records",
    ])
    def test_execution_policy_keys_are_operator_only(self, field):
        """Clients must not pick the server's parallelism or engine:
        policy keys get a pointed trust-boundary rejection, not the
        generic unknown-field 400."""
        with pytest.raises(ProtocolError,
                           match="server-side execution policy"):
            config_from_dict({field: 4})


class TestAnalyzeRequest:
    def test_minimal_request(self):
        name, config = parse_analyze_request({"workload": "com"})
        assert name == "com"
        assert config == ExperimentConfig()

    def test_request_with_config(self):
        name, config = parse_analyze_request(
            {"workload": "go", "config": {"max_instructions": 500}}
        )
        assert (name, config.max_instructions) == ("go", 500)

    def test_unknown_workload(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            parse_analyze_request({"workload": "nope"})

    def test_missing_workload(self):
        with pytest.raises(ProtocolError, match="workload"):
            parse_analyze_request({})

    def test_unknown_request_field(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            parse_analyze_request({"workload": "com", "extra": 1})

    def test_non_object_body(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_analyze_request("com")


class TestSweepRequest:
    def test_explicit_workloads_cross_configs(self):
        pairs = parse_sweep_request({
            "workloads": ["com", "go"],
            "configs": [{"scale": 1}, {"scale": 2}],
        })
        assert len(pairs) == 4
        assert {name for name, __ in pairs} == {"com", "go"}
        assert {config.scale for __, config in pairs} == {1, 2}

    def test_default_workloads_is_the_suite(self):
        pairs = parse_sweep_request({"configs": [{}]})
        assert [name for name, __ in pairs] == [w.name for w in SUITE]

    def test_empty_configs_rejected(self):
        with pytest.raises(ProtocolError, match="configs"):
            parse_sweep_request({"configs": []})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            parse_sweep_request({"workloads": ["zzz"], "configs": [{}]})


class TestTenantHeader:
    """X-Repro-Tenant parsing at the trust boundary (docs/qos.md)."""

    def test_absent_header_is_the_default_tenant(self):
        from repro.service import DEFAULT_TENANT, parse_tenant_header

        assert parse_tenant_header(None) is DEFAULT_TENANT

    def test_valid_header(self):
        from repro.service import parse_tenant_header

        assert parse_tenant_header("team-7.web").name == "team-7.web"

    def test_malformed_header_is_a_protocol_error(self):
        from repro.service import parse_tenant_header

        with pytest.raises(ProtocolError, match="lowercase"):
            parse_tenant_header("No Spaces Allowed")

    def test_empty_header_points_at_the_fix(self):
        from repro.service import parse_tenant_header

        with pytest.raises(ProtocolError, match="omit the header"):
            parse_tenant_header("")

    def test_overlong_header_is_rejected(self):
        from repro.service import parse_tenant_header

        with pytest.raises(ProtocolError, match="too long"):
            parse_tenant_header("x" * 64)


class TestQosKeyRejection:
    """Clients cannot smuggle tenant identity or QoS policy into a
    request body — pointed 400s, not generic unknown-key ones."""

    def test_tenant_in_analyze_body_names_the_header(self):
        with pytest.raises(ProtocolError,
                           match="X-Repro-Tenant request header"):
            parse_analyze_request({"workload": "com", "tenant": "alice"})

    def test_tenant_in_sweep_body_names_the_header(self):
        with pytest.raises(ProtocolError,
                           match="X-Repro-Tenant request header"):
            parse_sweep_request({"configs": [{}], "tenant": "alice"})

    @pytest.mark.parametrize("key", ["qos", "priority", "class",
                                     "quota", "weight"])
    def test_qos_keys_in_analyze_body_name_the_operator(self, key):
        with pytest.raises(ProtocolError,
                           match="service operator"):
            parse_analyze_request({"workload": "com", key: "high"})

    def test_qos_keys_in_sweep_body(self):
        with pytest.raises(ProtocolError, match="repro serve --qos"):
            parse_sweep_request({"configs": [{}], "priority": 1})

    def test_qos_keys_inside_config_object(self):
        with pytest.raises(ProtocolError, match="server-side QoS"):
            config_from_dict({"priority": "interactive"})

    def test_tenant_inside_config_object(self):
        with pytest.raises(ProtocolError,
                           match="X-Repro-Tenant request header"):
            config_from_dict({"tenant": "alice"})

    def test_rejection_beats_generic_unknown_key_error(self):
        # The pointed message, not "unknown request field(s): ...".
        with pytest.raises(ProtocolError) as excinfo:
            parse_analyze_request({"workload": "com", "quota": 5})
        assert "unknown request field" not in str(excinfo.value)
