"""Fleet availability machinery: breaker, ring, failover router.

These tests exercise the in-process pieces — :class:`CircuitBreaker`
with an injected clock (no sleeping), :class:`HashRing` determinism
and consistency, and :class:`FleetClient` routing against scripted
workers (no processes, no sockets).  The full supervisor/worker stack
is covered by the chaos harness (``python -m repro chaos --fleet``)
and the ``fleet-smoke`` make target.
"""

import random
import types

import pytest

from repro.service.client import RequestFailed, ServiceUnavailable
from repro.service.fleet import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    FleetClient,
    HashRing,
    WorkerHandle,
)
from repro.service import fleet as fleet_mod


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_breaker(threshold=3, recovery=10.0):
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=threshold,
                             recovery_time=recovery, clock=clock)
    return breaker, clock


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker, __ = make_breaker()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_consecutive_failures_trip_open(self):
        breaker, __ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        # The threshold counts *consecutive* failures only.
        breaker, __ = make_breaker(threshold=3)
        for __unused in range(5):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_open_resolves_to_half_open_after_recovery(self):
        breaker, clock = make_breaker(threshold=1, recovery=10.0)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.advance(9.9)
        assert breaker.state == BREAKER_OPEN
        clock.advance(0.2)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make_breaker(threshold=1, recovery=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()          # the probe claims the slot
        assert not breaker.allow()      # everyone else waits
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, recovery=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_window(self):
        breaker, clock = make_breaker(threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()        # the probe failed
        assert breaker.state == BREAKER_OPEN
        clock.advance(9.9)              # the window restarts in full
        assert breaker.state == BREAKER_OPEN
        clock.advance(0.2)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_random_walk_matches_reference_model(self):
        """Property test: scripted outcome sequences against an
        independent model of closed → open → half-open → closed."""
        for seed in range(25):
            rng = random.Random(seed)
            threshold, recovery = rng.choice([(1, 1.0), (3, 5.0)])
            breaker, clock = make_breaker(threshold, recovery)
            # Reference model state.
            state, failures, opened_at, probing = \
                BREAKER_CLOSED, 0, 0.0, False

            def resolve():
                nonlocal state, probing
                if (state == BREAKER_OPEN
                        and clock.now - opened_at >= recovery):
                    state, probing = BREAKER_HALF_OPEN, False

            for step in range(200):
                op = rng.choice(["fail", "success", "allow",
                                 "advance", "advance"])
                if op == "advance":
                    clock.advance(rng.choice([0.0, recovery * 0.4,
                                              recovery * 1.1]))
                elif op == "fail":
                    breaker.record_failure()
                    resolve()
                    if state == BREAKER_HALF_OPEN:
                        state, opened_at, probing = \
                            BREAKER_OPEN, clock.now, False
                    else:
                        failures += 1
                        if (state == BREAKER_CLOSED
                                and failures >= threshold):
                            state, opened_at = BREAKER_OPEN, clock.now
                elif op == "success":
                    breaker.record_success()
                    resolve()
                    state, failures, probing = BREAKER_CLOSED, 0, False
                else:
                    got = breaker.allow()
                    resolve()
                    if state == BREAKER_CLOSED:
                        expected = True
                    elif state == BREAKER_HALF_OPEN and not probing:
                        expected, probing = True, True
                    else:
                        expected = False
                    assert got == expected, (seed, step, op, state)
                resolve()
                assert breaker.state == state, (seed, step, op)


class TestHashRing:
    def test_preference_order_is_a_permutation_with_owner_first(self):
        ring = HashRing([0, 1, 2, 3])
        order = ring.preference_order("somekey")
        assert sorted(order) == [0, 1, 2, 3]
        assert order[0] == ring.owner("somekey")

    def test_deterministic_across_instances(self):
        keys = [f"key-{i}" for i in range(50)]
        first = HashRing([0, 1, 2])
        second = HashRing([0, 1, 2])
        for key in keys:
            assert first.preference_order(key) == \
                second.preference_order(key)

    def test_every_worker_owns_some_keys(self):
        ring = HashRing([0, 1, 2, 3])
        owners = {ring.owner(f"key-{i}") for i in range(300)}
        assert owners == {0, 1, 2, 3}

    def test_removing_a_worker_only_moves_its_keys(self):
        # The consistent-hashing property failover relies on: keys not
        # owned by the departed worker keep their owner.
        big = HashRing([0, 1, 2])
        small = HashRing([0, 1])
        for i in range(200):
            key = f"key-{i}"
            owner = big.owner(key)
            if owner != 2:
                assert small.owner(key) == owner

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            HashRing([]).owner("x")


class TestRequestKey:
    def test_stable_and_config_sensitive(self):
        a = FleetClient.request_key("com", {"max_instructions": 1000})
        b = FleetClient.request_key("com", {"max_instructions": 1000})
        c = FleetClient.request_key("com", {"max_instructions": 2000})
        d = FleetClient.request_key("go", {"max_instructions": 1000})
        assert a == b
        assert len({a, c, d}) == 3

    def test_none_config_equals_empty(self):
        assert FleetClient.request_key("com", None) == \
            FleetClient.request_key("com", {})


# ----------------------------------------------------------------------
# FleetClient routing against scripted workers.
# ----------------------------------------------------------------------

class _ScriptedClient:
    """Stands in for ServiceClient: behaviour scripted per port."""

    script: dict = {}       #: port -> callable(workload, config)
    calls: list = []        #: ports in request order

    def __init__(self, host, port, **kwargs):
        self.port = port

    def analyze(self, workload, config=None):
        _ScriptedClient.calls.append(self.port)
        return _ScriptedClient.script[self.port](workload, config)


@pytest.fixture()
def scripted(monkeypatch):
    _ScriptedClient.script = {}
    _ScriptedClient.calls = []
    monkeypatch.setattr(fleet_mod, "ServiceClient", _ScriptedClient)
    return _ScriptedClient


def make_fleet(n=2):
    """A supervisor stand-in: real handles + ring, no processes."""
    workers = {
        worker_id: WorkerHandle(worker_id=worker_id, host="127.0.0.1",
                                port=9000 + worker_id,
                                breaker=CircuitBreaker(), state="up")
        for worker_id in range(n)
    }
    return types.SimpleNamespace(workers=workers,
                                 ring=HashRing(sorted(workers)))


def _ok(workload, config):
    return {"workload": workload, "status": "computed",
            "result": {"name": workload}}


class TestFleetClientRouting:
    def test_routes_to_the_ring_owner(self, scripted):
        fleet = make_fleet(3)
        for handle in fleet.workers.values():
            scripted.script[handle.port] = _ok
        client = FleetClient(fleet, deadline=5.0)
        payload = client.analyze("com", {"max_instructions": 1000})
        assert payload["status"] == "computed"
        key = FleetClient.request_key("com",
                                      {"max_instructions": 1000})
        owner = fleet.ring.owner(key)
        assert scripted.calls == [fleet.workers[owner].port]

    def test_failover_to_the_next_ring_position(self, scripted):
        fleet = make_fleet(2)
        key = FleetClient.request_key("com", None)
        owner, sibling = fleet.ring.preference_order(key)

        def down(workload, config):
            raise ServiceUnavailable("connection refused")

        scripted.script[fleet.workers[owner].port] = down
        scripted.script[fleet.workers[sibling].port] = _ok
        client = FleetClient(fleet, deadline=5.0)
        payload = client.analyze("com")
        assert payload["result"]["name"] == "com"
        assert scripted.calls == [fleet.workers[owner].port,
                                  fleet.workers[sibling].port]

    def test_retry_after_benches_the_shedding_worker(self, scripted):
        fleet = make_fleet(2)
        key = FleetClient.request_key("com", None)
        owner, sibling = fleet.ring.preference_order(key)

        def shedding(workload, config):
            raise ServiceUnavailable("HTTP 429", last_status=429,
                                     retry_after=30.0)

        scripted.script[fleet.workers[owner].port] = shedding
        scripted.script[fleet.workers[sibling].port] = _ok
        client = FleetClient(fleet, deadline=5.0)
        client.analyze("com")
        # The hint survived failover: the owner is benched...
        assert fleet.workers[owner].not_before > 0
        # ...so the next identical request skips it entirely.
        scripted.calls.clear()
        client.analyze("com")
        assert scripted.calls == [fleet.workers[sibling].port]

    def test_open_breaker_takes_a_worker_out_of_rotation(self, scripted):
        fleet = make_fleet(2)
        key = FleetClient.request_key("com", None)
        owner, sibling = fleet.ring.preference_order(key)
        for __ in range(3):
            fleet.workers[owner].breaker.record_failure()
        assert fleet.workers[owner].breaker.state == BREAKER_OPEN
        for handle in fleet.workers.values():
            scripted.script[handle.port] = _ok
        client = FleetClient(fleet, deadline=5.0)
        client.analyze("com")
        assert scripted.calls == [fleet.workers[sibling].port]

    def test_request_failed_does_not_fail_over(self, scripted):
        # A 4xx means the request is wrong; no sibling will answer
        # differently, so it propagates after one attempt.
        fleet = make_fleet(2)

        def bad_request(workload, config):
            raise RequestFailed(400, {"error": "unknown workload"})

        for handle in fleet.workers.values():
            scripted.script[handle.port] = bad_request
        client = FleetClient(fleet, deadline=5.0)
        with pytest.raises(RequestFailed):
            client.analyze("nope")
        assert len(scripted.calls) == 1
        # The worker answered: its breaker saw a success, not a fault.
        for handle in fleet.workers.values():
            assert handle.breaker.state == BREAKER_CLOSED

    def test_deadline_exhaustion_carries_the_last_hint(self, scripted):
        fleet = make_fleet(2)

        def shedding(workload, config):
            raise ServiceUnavailable("HTTP 429", last_status=429,
                                     retry_after=2.5)

        for handle in fleet.workers.values():
            scripted.script[handle.port] = shedding
        client = FleetClient(fleet, deadline=0.3)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.analyze("com")
        assert "deadline" in str(excinfo.value)
        assert excinfo.value.retry_after == 2.5
